type builder =
  stage:int ->
  state:Mset.state ->
  pairs:(int * int) array ->
  Reverse_delta.kind option array

type result = {
  reports : Theorem41.block_report list;
  survived : int;
  final_pattern : Pattern.t;
  final_m_set : int list;
  program : Register_model.t;
}

(* Wires paired at stage [t] of a block on 2^d wires differ in bit
   [d - t]; the sub0-side wire has that bit 0.  [pair_base d t i]
   inserts a 0 bit at position [d - t] into [i]. *)
let pair_base ~d ~t i =
  let b = d - t in
  let low = i land ((1 lsl b) - 1) in
  let high = i lsr b in
  (high lsl (b + 1)) lor low

let rotl ~width ~count x =
  let k = count mod width in
  if k = 0 then x
  else ((x lsl k) lor (x lsr (width - k))) land ((1 lsl width) - 1)

let op_of_kind = function
  | None -> Register_model.Zero
  | Some Reverse_delta.Min_left -> Register_model.Plus
  | Some Reverse_delta.Min_right -> Register_model.Minus
  | Some Reverse_delta.Swap -> Register_model.One

let run ?k ~n ~blocks builder =
  if not (Bitops.is_power_of_two n) || n < 2 then
    invalid_arg "Adaptive.run: n must be a power of two >= 2";
  let d = Bitops.log2_exact n in
  let k = match k with Some k -> k | None -> max 2 d in
  let st = Mset.create ~n ~k in
  let stages_ops = ref [] in
  let reports = ref [] in
  let survived = ref 0 in
  (try
     for index = 0 to blocks - 1 do
       let a_size = Mset.tracked_count st in
       (* Per-class collections; a class's key is the low (d - t) + 1
          bits its wires share before stage t+1 merges it. *)
       let colls = Hashtbl.create n in
       for w = 0 to n - 1 do
         Hashtbl.add colls w (Mset.singleton_collection st w)
       done;
       for t = 1 to d do
         let half = n / 2 in
         let pairs =
           Array.init half (fun i ->
               let o = pair_base ~d ~t i in
               (o, o lxor (1 lsl (d - t))))
         in
         let kinds = builder ~stage:t ~state:st ~pairs in
         if Array.length kinds <> half then
           invalid_arg "Adaptive.run: builder returned wrong-length labeling";
         (* Record the stage as a register-model op vector: the pair
            with base wire o sits on registers (2m, 2m+1) where
            2m = rotl^t o. *)
         let ops = Array.make half Register_model.Zero in
         Array.iteri
           (fun i kind ->
             let o, _ = pairs.(i) in
             let m = rotl ~width:d ~count:t o / 2 in
             ops.(m) <- op_of_kind kind)
           kinds;
         stages_ops := ops :: !stages_ops;
         (* Merge sibling classes.  The class of a wire before this
            stage is its low d-t+1 bits; after, its low d-t bits. *)
         let key_mask = (1 lsl (d - t)) - 1 in
         let cross_of = Hashtbl.create 64 in
         Array.iteri
           (fun i kind ->
             match kind with
             | None -> ()
             | Some kind ->
                 let left, right = pairs.(i) in
                 let key = left land key_mask in
                 let cur =
                   Option.value ~default:[] (Hashtbl.find_opt cross_of key)
                 in
                 Hashtbl.replace cross_of key
                   ({ Reverse_delta.left; right; kind } :: cur))
           kinds;
         let next = Hashtbl.create (n lsr t) in
         for key = 0 to (1 lsl (d - t)) - 1 do
           let left_key = key and right_key = key lor (1 lsl (d - t)) in
           let left = Hashtbl.find colls left_key in
           let right = Hashtbl.find colls right_key in
           let cross =
             Option.value ~default:[] (Hashtbl.find_opt cross_of key)
           in
           let coll, _ = Mset.merge st ~cross ~left ~right in
           Hashtbl.add next key coll
         done;
         Hashtbl.reset colls;
         Hashtbl.iter (Hashtbl.add colls) next
       done;
       let coll = Hashtbl.find colls 0 in
       let chosen, d_size = Mset.best_set coll in
       Mset.rho_rename st coll chosen;
       reports :=
         { Theorem41.index;
           a_size;
           b_size = coll.Mset.total;
           sets = coll.Mset.t;
           d_size;
           paper_bound = Theorem41.paper_bound ~n ~blocks:(index + 1) }
         :: !reports;
       if d_size >= 2 then incr survived else raise Exit
     done
   with Exit -> ());
  let program =
    Register_model.shuffle_program ~n (List.rev !stages_ops)
  in
  { reports = List.rev !reports;
    survived = !survived;
    final_pattern = Array.copy st.Mset.input_sym;
    final_m_set = Pattern.m_set st.Mset.input_sym 0;
    program }

let tracked_set state w =
  match state.Mset.origin.(w) with
  | Some iw when state.Mset.tracked.(iw) -> Some state.Mset.set_idx.(iw)
  | Some _ | None -> None

let oblivious_all_compare ~stage:_ ~state:_ ~pairs =
  Array.map (fun _ -> Some Reverse_delta.Min_left) pairs

let greedy_killer ~stage:_ ~state ~pairs =
  Array.map
    (fun (a, b) ->
      match (tracked_set state a, tracked_set state b) with
      | Some sa, Some sb when sa = sb -> Some Reverse_delta.Min_left
      | (Some _ | None), _ -> None)
    pairs

let steering_killer ~stage ~state ~pairs =
  let n = Array.length state.Mset.sym in
  let d = Bitops.log2_exact n in
  Array.map
    (fun (a, b) ->
      match (tracked_set state a, tracked_set state b) with
      | Some sa, Some sb when sa = sb -> Some Reverse_delta.Min_left
      | Some _, Some _ -> None
      | None, None -> None
      | (Some set, None | None, Some set) when stage < d ->
          (* One tracked value; park it where the *next* stage will
             pair it with a same-set value, if that is possible. *)
          let next_bit = 1 lsl (d - stage - 1) in
          let here = if tracked_set state a <> None then a else b in
          let partner_of w = w lxor next_bit in
          let same_set_at w = tracked_set state w = Some set in
          let good_at w = same_set_at (partner_of w) in
          if good_at here then None (* already parked well: "0" *)
          else if good_at (if here = a then b else a) then
            Some Reverse_delta.Swap
          else None
      | (Some _ | None), _ -> None)
    pairs
