type stats = {
  a_size : int;
  b_size : int;
  levels : int;
  sets : int;
  merges : Mset.merge_stats list;
}

let run ?(policy = Mset.Argmin) ?(sink = Sink.null) st rd =
  Span.run ~sink ~name:"lemma41" @@ fun sp ->
  let a_size =
    Array.fold_left
      (fun acc w ->
        match st.Mset.origin.(w) with
        | Some iw when st.Mset.tracked.(iw) -> acc + 1
        | Some _ | None -> acc)
      0 (Reverse_delta.leaves rd)
  in
  let merges = ref [] in
  let rec go = function
    | Reverse_delta.Wire w -> Mset.singleton_collection st w
    | Reverse_delta.Node { sub0; sub1; cross } ->
        let left = go sub0 in
        let right = go sub1 in
        let coll, ms = Mset.merge ~policy st ~cross ~left ~right in
        merges := ms :: !merges;
        coll
  in
  let coll = go rd in
  let l = Reverse_delta.levels rd in
  (* Property (4):  |B| * k^2 >= |A| * (k^2 - l). *)
  let k2 = st.Mset.k * st.Mset.k in
  (match policy with
  | Mset.Argmin | Mset.First_below_average ->
      assert (coll.Mset.total * k2 >= a_size * (k2 - l))
  | Mset.Fixed _ -> ());
  (* t(l) = k^3 + l k^2. *)
  assert (coll.Mset.t = (st.Mset.k * k2) + (l * k2));
  Span.add sp "a_size" (Sink.Int a_size);
  Span.add sp "b_size" (Sink.Int coll.Mset.total);
  Span.add sp "levels" (Sink.Int l);
  Span.add sp "sets" (Sink.Int coll.Mset.t);
  ( coll,
    { a_size;
      b_size = coll.Mset.total;
      levels = l;
      sets = coll.Mset.t;
      merges = List.rev !merges } )
