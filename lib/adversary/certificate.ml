type t = {
  input : int array;
  twin : int array;
  wire0 : int;
  wire1 : int;
  value0 : int;
  value1 : int;
  m_set : int list;
}

let of_pattern p =
  match Pattern.m_set p 0 with
  | w0 :: w1 :: _ as m_set ->
      (* canonical_input gives wires of one symbol consecutive values in
         wire order, so the two smallest-index M_0 wires receive m and
         m+1. *)
      let input, twin = Pattern.input_with_swap p w0 w1 in
      Some
        { input;
          twin;
          wire0 = w0;
          wire1 = w1;
          value0 = input.(w0);
          value1 = input.(w1);
          m_set }
  | [] | [ _ ] -> None

let is_permutation a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.for_all
    (fun v ->
      if v < 0 || v >= n || seen.(v) then false
      else begin
        seen.(v) <- true;
        true
      end)
    a

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let check cond msg = if cond then Ok () else Error msg

let validate nw cert =
  let n = Network.wires nw in
  let* () = check (Array.length cert.input = n) "input length mismatch" in
  let* () = check (is_permutation cert.input) "input is not a permutation" in
  let* () =
    check
      (cert.value1 = cert.value0 + 1)
      "witness values are not adjacent"
  in
  let* () =
    check
      (cert.input.(cert.wire0) = cert.value0
      && cert.input.(cert.wire1) = cert.value1)
      "witness wires do not carry the witness values"
  in
  let* () =
    let expected = Array.copy cert.input in
    expected.(cert.wire0) <- cert.value1;
    expected.(cert.wire1) <- cert.value0;
    check (cert.twin = expected) "twin is not input with the stated swap"
  in
  let out, trace = Trace.run nw cert.input in
  let* () =
    check
      (not (Trace.compared trace cert.value0 cert.value1))
      "witness values were compared: certificate is void"
  in
  let out' = Network.eval nw cert.twin in
  let swap v =
    if v = cert.value0 then cert.value1
    else if v = cert.value1 then cert.value0
    else v
  in
  let* () =
    check
      (Array.for_all2 (fun a b -> b = swap a) out out')
      "outputs are not identical up to the witness swap"
  in
  check
    (not (Sortedness.is_sorted out && Sortedness.is_sorted out'))
    "both outputs sorted (impossible)"

let validate_noncolliding nw cert =
  let _, trace = Trace.run nw cert.input in
  let values = List.map (fun w -> cert.input.(w)) cert.m_set in
  let rec pairs = function
    | [] -> Ok ()
    | v :: rest ->
        let bad = List.find_opt (fun u -> Trace.compared trace v u) rest in
        (match bad with
        | Some u ->
            Error
              (Printf.sprintf "M_0 values %d and %d were compared" v u)
        | None -> pairs rest)
  in
  pairs values
