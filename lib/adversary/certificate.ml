type t = {
  input : int array;
  twin : int array;
  wire0 : int;
  wire1 : int;
  value0 : int;
  value1 : int;
  m_set : int list;
}

let of_pattern p =
  match Pattern.m_set p 0 with
  | w0 :: w1 :: _ as m_set ->
      (* canonical_input gives wires of one symbol consecutive values in
         wire order, so the two smallest-index M_0 wires receive m and
         m+1. *)
      let input, twin = Pattern.input_with_swap p w0 w1 in
      Some
        { input;
          twin;
          wire0 = w0;
          wire1 = w1;
          value0 = input.(w0);
          value1 = input.(w1);
          m_set }
  | [] | [ _ ] -> None

let is_permutation a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.for_all
    (fun v ->
      if v < 0 || v >= n || seen.(v) then false
      else begin
        seen.(v) <- true;
        true
      end)
    a

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let check cond msg = if cond then Ok () else Error msg

let validate nw cert =
  let n = Network.wires nw in
  let* () = check (Array.length cert.input = n) "input length mismatch" in
  let* () = check (is_permutation cert.input) "input is not a permutation" in
  let* () =
    check
      (cert.value1 = cert.value0 + 1)
      "witness values are not adjacent"
  in
  let* () =
    check
      (cert.input.(cert.wire0) = cert.value0
      && cert.input.(cert.wire1) = cert.value1)
      "witness wires do not carry the witness values"
  in
  let* () =
    let expected = Array.copy cert.input in
    expected.(cert.wire0) <- cert.value1;
    expected.(cert.wire1) <- cert.value0;
    check (cert.twin = expected) "twin is not input with the stated swap"
  in
  let out, trace = Trace.run nw cert.input in
  let* () =
    check
      (not (Trace.compared trace cert.value0 cert.value1))
      "witness values were compared: certificate is void"
  in
  let out' = Network.eval nw cert.twin in
  let swap v =
    if v = cert.value0 then cert.value1
    else if v = cert.value1 then cert.value0
    else v
  in
  let* () =
    check
      (Array.for_all2 (fun a b -> b = swap a) out out')
      "outputs are not identical up to the witness swap"
  in
  check
    (not (Sortedness.is_sorted out && Sortedness.is_sorted out'))
    "both outputs sorted (impossible)"

(* Rewrite the network as register-model stages — wire permutation plus
   ops on register pairs [(2k, 2k+1)] — and pack this fooling pair into
   a portable {!Cert.Lower_bound} the independent checker can replay.
   Only networks whose every gate sits on a register pair convert
   (shuffle-based topologies do by construction). *)
let to_cert nw cert =
  let n = Network.wires nw in
  if n < 2 || n mod 2 <> 0 then
    Error "register-model certificates need an even wire count"
  else begin
    let exception Bad of string in
    try
      let stages =
        List.mapi
          (fun li (level : Network.level) ->
            let perm =
              match level.Network.pre with
              | None -> Array.init n Fun.id
              | Some p -> Perm.to_array p
            in
            let ops = Bytes.make (n / 2) '0' in
            List.iter
              (fun g ->
                let pair, op =
                  match g with
                  | Gate.Compare { lo; hi } when hi = lo + 1 && lo mod 2 = 0 ->
                      (lo / 2, '+')
                  | Gate.Compare { lo; hi } when lo = hi + 1 && hi mod 2 = 0 ->
                      (hi / 2, '-')
                  | Gate.Exchange { a; b }
                    when abs (a - b) = 1 && min a b mod 2 = 0 ->
                      (min a b / 2, '1')
                  | _ ->
                      raise
                        (Bad
                           (Printf.sprintf
                              "level %d has a gate off the register pairs"
                              (li + 1)))
                in
                if Bytes.get ops pair <> '0' then
                  raise
                    (Bad
                       (Printf.sprintf "level %d reuses register pair %d"
                          (li + 1) pair));
                Bytes.set ops pair op)
              level.Network.gates;
            Cert.{ perm; ops = Bytes.to_string ops })
          (Network.levels nw)
      in
      let c =
        Cert.Lower_bound
          { n;
            stages;
            input = cert.input;
            twin = cert.twin;
            wire0 = cert.wire0;
            wire1 = cert.wire1;
            value0 = cert.value0;
            value1 = cert.value1;
            m_set = cert.m_set }
      in
      match Cert.check c with
      | Ok () -> Ok c
      | Error e ->
          Error
            (Printf.sprintf
               "emitted certificate fails its own check: %s %s: %s" e.Cert.code
               e.Cert.where e.Cert.reason)
    with Bad why -> Error why
  end

let validate_noncolliding nw cert =
  let _, trace = Trace.run nw cert.input in
  let values = List.map (fun w -> cert.input.(w)) cert.m_set in
  let rec pairs = function
    | [] -> Ok ()
    | v :: rest ->
        let bad = List.find_opt (fun u -> Trace.compared trace v u) rest in
        (match bad with
        | Some u ->
            Error
              (Printf.sprintf "M_0 values %d and %d were compared" v u)
        | None -> pairs rest)
  in
  pairs values
