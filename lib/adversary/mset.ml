type collection = {
  sets : (int, int list) Hashtbl.t;
  t : int;
  total : int;
}

type state = {
  n : int;
  k : int;
  sym : Symbol.t array;
  origin : int option array;
  pos : int array;
  tracked : bool array;
  set_idx : int array;
  input_sym : Symbol.t array;
  mutable x_fresh : int;
}

let create ~n ~k =
  if n < 1 then invalid_arg "Mset.create: n must be >= 1";
  if k < 1 then invalid_arg "Mset.create: k must be >= 1";
  { n;
    k;
    sym = Array.make n (Symbol.M 0);
    origin = Array.init n (fun w -> Some w);
    pos = Array.init n (fun w -> w);
    tracked = Array.make n true;
    set_idx = Array.make n 0;
    input_sym = Array.make n (Symbol.M 0);
    x_fresh = 0 }

let t0 st = st.k * st.k * st.k

let singleton_collection st w =
  let sets = Hashtbl.create 1 in
  let total =
    match st.origin.(w) with
    | Some iw when st.tracked.(iw) ->
        (* A tracked value forms set [set_idx iw] of its leaf; at block
           start that index is always 0. *)
        Hashtbl.add sets st.set_idx.(iw) [ iw ];
        1
    | Some _ | None -> 0
  in
  { sets; t = t0 st; total }

let empty_collection st = { sets = Hashtbl.create 1; t = t0 st; total = 0 }

let union_collections colls =
  match colls with
  | [] -> invalid_arg "Mset.union_collections: empty list"
  | first :: _ ->
      let t = first.t in
      let sets = Hashtbl.create 64 in
      let total = ref 0 in
      List.iter
        (fun c ->
          if c.t <> t then
            invalid_arg "Mset.union_collections: mismatched set counts";
          Hashtbl.iter
            (fun idx members ->
              let cur = Option.value ~default:[] (Hashtbl.find_opt sets idx) in
              Hashtbl.replace sets idx (List.rev_append members cur);
              total := !total + List.length members)
            c.sets)
        colls;
      { sets; t; total = !total }

type merge_stats = {
  i0 : int;
  candidates : int;
  removed : int;
  left_total : int;
}

type offset_policy = Argmin | First_below_average | Fixed of int

let tracked_origin st w =
  match st.origin.(w) with
  | Some iw when st.tracked.(iw) -> Some iw
  | Some _ | None -> None

let is_comparator = function
  | Reverse_delta.Min_left | Reverse_delta.Min_right -> true
  | Reverse_delta.Swap -> false

(* Symbolically fire one cross element, routing symbols / origins and
   keeping [pos] inverse to [origin]. *)
let fire st (c : Reverse_delta.cross) =
  let move_swap () =
    let sl = st.sym.(c.left) and sr = st.sym.(c.right) in
    st.sym.(c.left) <- sr;
    st.sym.(c.right) <- sl;
    let ol = st.origin.(c.left) and or_ = st.origin.(c.right) in
    st.origin.(c.left) <- or_;
    st.origin.(c.right) <- ol;
    (match ol with Some iw -> st.pos.(iw) <- c.right | None -> ());
    match or_ with Some iw -> st.pos.(iw) <- c.left | None -> ()
  in
  match c.kind with
  | Reverse_delta.Swap -> move_swap ()
  | Reverse_delta.Min_left | Reverse_delta.Min_right ->
      let cmp = Symbol.compare st.sym.(c.left) st.sym.(c.right) in
      if cmp = 0 then begin
        (* Equal symbols: outcome ambiguous, but then neither side may
           be tracked — tracked collisions are expelled before firing. *)
        if tracked_origin st c.left <> None || tracked_origin st c.right <> None
        then
          failwith
            "Mset.fire: tracked value in an undetermined comparison (invariant broken)"
      end
      else
        let min_goes_left = c.kind = Reverse_delta.Min_left in
        let smaller_on_left = cmp < 0 in
        if min_goes_left <> smaller_on_left then move_swap ()

let untrack_to_x st iw ~set =
  let x = Symbol.X (set, st.x_fresh) in
  st.tracked.(iw) <- false;
  st.input_sym.(iw) <- x;
  let w = st.pos.(iw) in
  st.sym.(w) <- x;
  st.origin.(w) <- None

let merge ?(policy = Argmin) st ~cross ~left ~right =
  if left.t <> right.t then
    invalid_arg "Mset.merge: collections disagree on set count";
  let k2 = st.k * st.k in
  (* 1. Collision candidates C_{a,b}: left-side tracked wires whose
     cross partner is tracked too.  [Swap] elements never collide. *)
  let candidates =
    List.filter_map
      (fun (c : Reverse_delta.cross) ->
        if not (is_comparator c.kind) then None
        else
          match (tracked_origin st c.left, tracked_origin st c.right) with
          | Some iwl, Some iwr ->
              Some (st.set_idx.(iwl), st.set_idx.(iwr), iwl)
          | (Some _ | None), _ -> None)
      cross
  in
  (* 2. Loss per admissible offset. *)
  let losses = Array.make k2 0 in
  List.iter
    (fun (a, b, _) ->
      let diff = a - b in
      if diff >= 0 && diff < k2 then losses.(diff) <- losses.(diff) + 1)
    candidates;
  let i0 =
    match policy with
    | Argmin ->
        let best = ref 0 in
        Array.iteri (fun i l -> if l < losses.(!best) then best := i) losses;
        !best
    | First_below_average ->
        let rec find i =
          if i >= k2 then assert false
          else if losses.(i) * k2 <= left.total then i
          else find (i + 1)
        in
        find 0
    | Fixed i -> ((i mod k2) + k2) mod k2
  in
  (* The averaging argument: the L_i are disjoint subsets of B_0. *)
  (match policy with
  | Argmin | First_below_average -> assert (losses.(i0) * k2 <= left.total)
  | Fixed _ -> ());
  (* 3. Expel C_{a, a-i0} into fresh X symbols (refinement step 2 of
     the lemma's proof). *)
  let removed_of_set = Hashtbl.create 8 in
  List.iter
    (fun (a, b, iwl) ->
      if a - b = i0 then begin
        untrack_to_x st iwl ~set:a;
        let cur = Option.value ~default:[] (Hashtbl.find_opt removed_of_set a) in
        Hashtbl.replace removed_of_set a (iwl :: cur)
      end)
    candidates;
  if Hashtbl.length removed_of_set > 0 then st.x_fresh <- st.x_fresh + 1;
  let removed = losses.(i0) in
  (* 4. Build the combined collection: left sets keep their indices
     (minus expelled members); right set b becomes set b + i0
     (refinement steps 2' of the proof). *)
  let sets = Hashtbl.create (Hashtbl.length left.sets + Hashtbl.length right.sets) in
  Hashtbl.iter
    (fun a members ->
      let members =
        match Hashtbl.find_opt removed_of_set a with
        | None -> members
        | Some gone -> List.filter (fun iw -> not (List.mem iw gone)) members
      in
      if members <> [] then Hashtbl.replace sets a members)
    left.sets;
  Hashtbl.iter
    (fun b members ->
      let idx = b + i0 in
      List.iter
        (fun iw ->
          st.set_idx.(iw) <- idx;
          st.input_sym.(iw) <- Symbol.M idx;
          st.sym.(st.pos.(iw)) <- Symbol.M idx)
        members;
      let cur = Option.value ~default:[] (Hashtbl.find_opt sets idx) in
      Hashtbl.replace sets idx (List.rev_append members cur))
    right.sets;
  (* 5. Only now fire the cross level: every surviving tracked value
     meets only strictly ordered symbols, so its path is determined. *)
  List.iter (fire st) cross;
  let coll =
    { sets; t = left.t + k2; total = left.total + right.total - removed }
  in
  (coll, { i0; candidates = List.length candidates; removed; left_total = left.total })

let apply_swap_level st perm =
  if Perm.n perm <> st.n then invalid_arg "Mset.apply_swap_level: size mismatch";
  let old_sym = Array.copy st.sym and old_origin = Array.copy st.origin in
  for w = 0 to st.n - 1 do
    let w' = Perm.apply perm w in
    st.sym.(w') <- old_sym.(w);
    st.origin.(w') <- old_origin.(w);
    match old_origin.(w) with
    | Some iw when st.tracked.(iw) -> st.pos.(iw) <- w'
    | Some _ | None -> ()
  done

let best_set coll =
  let best = ref (0, 0) in
  Hashtbl.iter
    (fun idx members ->
      let size = List.length members in
      let bidx, bsize = !best in
      if size > bsize || (size = bsize && idx < bidx) then best := (idx, size))
    coll.sets;
  !best

let rho_rename st coll chosen =
  let pivot = Symbol.M chosen in
  let rename s =
    let c = Symbol.compare s pivot in
    if c < 0 then Symbol.S 0 else if c > 0 then Symbol.L 0 else Symbol.M 0
  in
  (* Untrack everything outside the chosen set; keep positions for the
     survivors and reset their index to 0. *)
  Hashtbl.iter
    (fun idx members ->
      List.iter
        (fun iw ->
          if idx = chosen then st.set_idx.(iw) <- 0
          else begin
            st.tracked.(iw) <- false;
            st.origin.(st.pos.(iw)) <- None
          end)
        members)
    coll.sets;
  for w = 0 to st.n - 1 do
    st.sym.(w) <- rename st.sym.(w)
  done;
  for iw = 0 to st.n - 1 do
    st.input_sym.(iw) <- rename st.input_sym.(iw)
  done;
  st.x_fresh <- 0

let tracked_count st =
  let c = ref 0 in
  Array.iter (fun b -> if b then incr c) st.tracked;
  !c

let check_invariants st coll =
  let fail fmt = Printf.ksprintf failwith fmt in
  for w = 0 to st.n - 1 do
    match st.origin.(w) with
    | Some iw when st.tracked.(iw) ->
        if st.pos.(iw) <> w then fail "pos/origin mismatch at wire %d" w;
        let expected = Symbol.M st.set_idx.(iw) in
        if not (Symbol.equal st.sym.(w) expected) then
          fail "wire %d: symbol %s but set %d" w
            (Symbol.to_string st.sym.(w))
            st.set_idx.(iw);
        if not (Symbol.equal st.input_sym.(iw) expected) then
          fail "input wire %d: input symbol %s but set %d" iw
            (Symbol.to_string st.input_sym.(iw))
            st.set_idx.(iw)
    | Some _ | None -> (
        match st.sym.(w) with
        | Symbol.M _ -> fail "wire %d: untracked value carries an M symbol" w
        | Symbol.S _ | Symbol.X _ | Symbol.L _ -> ())
  done;
  let seen = Hashtbl.create 64 in
  Hashtbl.iter
    (fun idx members ->
      if idx < 0 || idx >= coll.t then fail "set index %d out of [0,%d)" idx coll.t;
      List.iter
        (fun iw ->
          if Hashtbl.mem seen iw then fail "input wire %d in two sets" iw;
          Hashtbl.add seen iw ();
          if not st.tracked.(iw) then fail "input wire %d in a set but untracked" iw;
          if st.set_idx.(iw) <> idx then
            fail "input wire %d: set_idx %d but listed in set %d" iw st.set_idx.(iw) idx)
        members)
    coll.sets;
  for iw = 0 to st.n - 1 do
    if st.tracked.(iw) && not (Hashtbl.mem seen iw) then
      fail "input wire %d tracked but in no set" iw
  done;
  if Hashtbl.length seen <> coll.total then
    fail "collection total %d but %d members found" coll.total (Hashtbl.length seen)
