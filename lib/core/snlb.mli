(** Sorting-Network Lower Bound (snlb): an executable reproduction of
    Plaxton & Suel, "A Lower Bound for Sorting Networks Based on the
    Shuffle Permutation" (SPAA 1992).

    This umbrella module re-exports the public API. A typical run of
    the headline construction:

    {[
      let it = Shuffle_net.to_iterated program in
      let result = Theorem41.run it in
      match Certificate.of_pattern result.final_pattern with
      | Some cert ->
          let nw = Iterated.to_network it in
          assert (Certificate.validate nw cert = Ok ())
      | None -> (* network was deep enough to defeat the adversary *)
    ]}

    Layers, bottom-up:
    - {!Bitops}, {!Splitmix}, {!Xoshiro}, {!Perm}: index arithmetic,
      seeded randomness, permutations (shuffle / unshuffle).
    - {!Gate}, {!Network}, {!Trace}, {!Register_model}: the two
      comparator-network models of the paper and instrumented
      evaluation.
    - {!Reverse_delta}, {!Butterfly}, {!Iterated}, {!Shuffle_net},
      {!Random_net}: Definition 3.4 and the shuffle-block
      decomposition.
    - {!Bitonic}, {!Odd_even_merge}, {!Transposition}, {!Pratt},
      {!Periodic}, {!Insertion_net}, {!Sorter_registry}: baseline
      sorting networks.
    - {!Symbol}, {!Pattern}, {!Propagate}: the pattern alphabet,
      refinement, and Definition 3.5 semantics.
    - {!Mset}, {!Lemma41}, {!Theorem41}, {!Certificate}, {!Naive},
      {!Adaptive}, {!Truncated}: the adversary.
    - {!Compiled}, {!Bitslice}, {!Cache}: the compiled evaluation
      engine (flat instruction streams, 63-lane bit-sliced 0-1
      execution, structural compile cache).
    - {!Search} ({!State}, {!Subsume}, {!Layers}, {!Driver}): the
      exact-bounds search engine — layered BFS with subsumption
      pruning for optimal depths of small networks.
    - {!Sortedness}, {!Zero_one}, {!Exhaustive}: verification.
    - {!Benes}: permutation routing.
    - {!Clock}, {!Metrics}, {!Sink}, {!Span}, {!Obs}: the
      observability layer — monotonic clocks, global counters and
      histograms, timed hierarchical spans, NDJSON / in-memory sinks.
    - {!Workload}, {!Stat_summary}, {!Ascii_table}: harness support. *)

module Bitops = Bitops
module Splitmix = Splitmix
module Xoshiro = Xoshiro
module Perm = Perm
module Gate = Gate
module Network = Network
module Trace = Trace
module Register_model = Register_model
module Network_io = Network_io
module Diagram = Diagram
module Reverse_delta = Reverse_delta
module Butterfly = Butterfly
module Delta_net = Delta_net
module Iterated = Iterated
module Shuffle_net = Shuffle_net
module Random_net = Random_net
module Bitonic = Bitonic
module Odd_even_merge = Odd_even_merge
module Transposition = Transposition
module Pratt = Pratt
module Periodic = Periodic
module Insertion_net = Insertion_net
module Shellsort_net = Shellsort_net
module Sorter_registry = Sorter_registry
module Symbol = Symbol
module Pattern = Pattern
module Propagate = Propagate
module Collide = Collide
module Mset = Mset
module Lemma41 = Lemma41
module Theorem41 = Theorem41
module Certificate = Certificate
module Naive = Naive
module Adaptive = Adaptive
module Truncated = Truncated
module Min_depth = Min_depth
module Sortedness = Sortedness
module Zero_one = Zero_one
module Exhaustive = Exhaustive
module Sort_depth = Sort_depth
module Benes = Benes
module Ascend = Ascend
module Prefix = Prefix
module Ntt = Ntt
module Compiled = Compiled
module Bitslice = Bitslice
module Cache = Cache
module State = State
module Subsume = Subsume
module Layers = Layers
module Driver = Driver
module Search = Search
module Workload = Workload
module Par = Par
module Stat_summary = Stat_summary
module Ascii_table = Ascii_table
module Clock = Clock
module Metrics = Metrics
module Sink = Sink
module Span = Span
module Obs = Obs
module Crc32 = Crc32
module Atomic_file = Atomic_file
module Fault = Fault
module Cancel = Cancel
module Checkpoint = Checkpoint
