(** Structural-hash compile cache.

    Verification and sweep entry points compile through this cache so a
    network that is checked repeatedly — every registry sorter, every
    experiment harness loop — pays {!Compiled.of_network} once per
    process. Keys are canonical structural summaries (not physical
    identity), so independently constructed but identical networks
    share one compiled form.

    Domain-safe: the table is guarded by a mutex; compilation itself
    runs outside the critical section. The cache is bounded (it resets
    wholesale past 512 entries, a size no workload in this repository
    approaches). *)

val compile : Network.t -> Compiled.t
(** [compile nw] is [Compiled.of_network nw], memoised structurally. *)

type stats = { hits : int; misses : int; entries : int }

val stats : unit -> stats
(** Cumulative hit/miss counters and current table size. *)

val clear : unit -> unit
(** Drop all entries and reset the counters (tests, benchmarks). *)
