(** Structural-hash compile cache.

    Verification and sweep entry points compile through this cache so a
    network that is checked repeatedly — every registry sorter, every
    experiment harness loop — pays {!Compiled.of_network} once per
    process. Keys are canonical structural summaries (not physical
    identity), so independently constructed but identical networks
    share one compiled form.

    Domain-safe: the table is guarded by a mutex; compilation itself
    runs outside the critical section, and a racing duplicate compile
    of the same key is resolved first-insert-wins, so every caller
    receives the same physical compiled form and the stats stay
    consistent (each compile counts one miss; [entries] counts keys).

    The cache is bounded (512 entries by default) with second-chance
    eviction: every hit marks the entry used, and when the table is
    full the sweep evicts the first entry found cold — so hot entries
    survive past the bound instead of being dropped by a wholesale
    reset.

    Hits, misses, evictions and compile time are also recorded in the
    global {!Obs.Metrics} registry ([engine.cache.*]), surfaced by
    [snlb ... --metrics] and [make bench-json]. *)

val compile : Network.t -> Compiled.t
(** [compile nw] is [Compiled.of_network nw], memoised structurally. *)

type stats = { hits : int; misses : int; entries : int; evictions : int }

val stats : unit -> stats
(** Cumulative hit/miss/eviction counters and current table size. *)

val set_capacity : int -> unit
(** Change the entry bound (default 512), evicting down if the table
    is over it. Tests use a small capacity to exercise eviction.
    @raise Invalid_argument if the capacity is < 1. *)

val clear : unit -> unit
(** Drop all entries and reset the counters (tests, benchmarks). *)
