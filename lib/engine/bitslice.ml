let lanes = 63

(* All-lanes-set mask for [m] valid lanes; [(1 lsl 63) - 1] wraps to
   [-1], which is exactly "all 63 bits" on a 63-bit int. *)
let valid_mask m = if m >= lanes then -1 else (1 lsl m) - 1

let pop8 =
  Array.init 256 (fun i ->
      let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
      go 0 i)

(* Popcount over the full 63-bit word, sign bit included ([lsr] is a
   logical shift, so a "negative" word is just 63 data bits). *)
let popcount w =
  pop8.(w land 0xff)
  + pop8.((w lsr 8) land 0xff)
  + pop8.((w lsr 16) land 0xff)
  + pop8.((w lsr 24) land 0xff)
  + pop8.((w lsr 32) land 0xff)
  + pop8.((w lsr 40) land 0xff)
  + pop8.((w lsr 48) land 0xff)
  + pop8.(w lsr 56)

let lowest_bit w =
  let i = ref 0 in
  while (w lsr !i) land 1 = 0 do
    incr i
  done;
  !i

(* Bit [w] of consecutive integers is periodic with period [2^(w+1)].
   For [w <= 5] the period fits in a word: precompute the 63-lane
   pattern for every phase, once per sweep. For [w >= 6] the period
   exceeds 63, so a block sees at most one 0->1 / 1->0 transition and
   the word is two runs, built directly from the transition index. *)
let low_patterns n =
  let wmax = min (n - 1) 5 in
  Array.init (wmax + 1) (fun w ->
      let period = 1 lsl (w + 1) in
      Array.init period (fun phase ->
          let word = ref 0 in
          for j = 0 to lanes - 1 do
            if ((phase + j) lsr w) land 1 = 1 then word := !word lor (1 lsl j)
          done;
          !word))

(* state.(w) <- bits j in [0, 63) of ((t0 + j) lsr w) land 1.  Lanes
   beyond a caller's valid range carry the bits of the inputs just past
   it; the violation mask discards them. *)
let fill_columns pats n t0 state =
  let npats = Array.length pats in
  for w = 0 to n - 1 do
    state.(w) <-
      (if w < npats then pats.(w).(t0 land ((1 lsl (w + 1)) - 1))
       else begin
         let pw = 1 lsl w in
         let rem = t0 land (pw - 1) in
         let bit0 = (t0 lsr w) land 1 in
         let flip = if rem = 0 then pw else pw - rem in
         if flip >= lanes then if bit0 = 1 then -1 else 0
         else begin
           let low = (1 lsl flip) - 1 in
           if bit0 = 1 then low else lnot low
         end
       end)
  done

(* One pass over the instruction stream on packed words: a comparator
   is (AND -> min slot, OR -> max slot), an exchange swaps words. *)
let exec_words (c : Compiled.t) state =
  let kinds = c.Compiled.kinds
  and ga = c.Compiled.ga
  and gb = c.Compiled.gb in
  for i = 0 to Bytes.length kinds - 1 do
    let a = Array.unsafe_get ga i and b = Array.unsafe_get gb i in
    let x = Array.unsafe_get state a and y = Array.unsafe_get state b in
    if Bytes.unsafe_get kinds i = '\000' then begin
      Array.unsafe_set state a (x land y);
      Array.unsafe_set state b (x lor y)
    end
    else begin
      Array.unsafe_set state a y;
      Array.unsafe_set state b x
    end
  done

(* Lanes whose output is out of order: ascending needs col_r <=
   col_{r+1} pointwise in output-register order, which reads through
   the final routing map when present. *)
let violation_word (c : Compiled.t) state =
  let n = c.Compiled.wires in
  let v = ref 0 in
  (match c.Compiled.take with
  | None ->
      for r = 0 to n - 2 do
        v := !v lor (state.(r) land lnot state.(r + 1))
      done
  | Some take ->
      for r = 0 to n - 2 do
        v := !v lor (state.(take.(r)) land lnot state.(take.(r + 1)))
      done);
  !v

let check_range fn c ~lo ~hi =
  if lo < 0 || lo > hi then
    invalid_arg (Printf.sprintf "Bitslice.%s: bad range [%d, %d)" fn lo hi);
  ignore (c : Compiled.t)

let find_unsorted_range ?stop c ~lo ~hi =
  check_range "find_unsorted_range" c ~lo ~hi;
  let n = c.Compiled.wires in
  let pats = low_patterns n in
  let state = Array.make n 0 in
  let stopped () = match stop with None -> false | Some s -> Atomic.get s in
  let result = ref None in
  let t = ref lo in
  while !result = None && !t < hi && not (stopped ()) do
    fill_columns pats n !t state;
    exec_words c state;
    let v = violation_word c state land valid_mask (hi - !t) in
    if v <> 0 then begin
      result := Some (!t + lowest_bit v);
      match stop with None -> () | Some s -> Atomic.set s true
    end;
    t := !t + lanes
  done;
  !result

let count_unsorted_range c ~lo ~hi =
  check_range "count_unsorted_range" c ~lo ~hi;
  let n = c.Compiled.wires in
  let pats = low_patterns n in
  let state = Array.make n 0 in
  let count = ref 0 in
  let t = ref lo in
  while !t < hi do
    fill_columns pats n !t state;
    exec_words c state;
    count :=
      !count + popcount (violation_word c state land valid_mask (hi - !t));
    t := !t + lanes
  done;
  !count

(* Arbitrary (non-consecutive) test inputs packed one per lane: the
   gather/batch/scatter entry point the verification service uses to
   fill one word-parallel pass with unrelated clients' inputs. *)
let eval_masks c masks =
  let n = c.Compiled.wires in
  let m = Array.length masks in
  if m > lanes then
    invalid_arg
      (Printf.sprintf "Bitslice.eval_masks: %d masks (max %d lanes)" m lanes);
  Array.iteri
    (fun j mask ->
      if mask < 0 || (n < 62 && mask lsr n <> 0) then
        invalid_arg
          (Printf.sprintf "Bitslice.eval_masks: mask %d at lane %d out of [0, 2^%d)"
             mask j n))
    masks;
  let state = Array.make n 0 in
  for w = 0 to n - 1 do
    let word = ref 0 in
    for j = 0 to m - 1 do
      if (Array.unsafe_get masks j lsr w) land 1 = 1 then
        word := !word lor (1 lsl j)
    done;
    state.(w) <- !word
  done;
  exec_words c state;
  let out = Array.make m 0 in
  let scatter r word =
    if word <> 0 then
      for j = 0 to m - 1 do
        if (word lsr j) land 1 = 1 then out.(j) <- out.(j) lor (1 lsl r)
      done
  in
  (match c.Compiled.take with
  | None -> for r = 0 to n - 1 do scatter r state.(r) done
  | Some take -> for r = 0 to n - 1 do scatter r state.(take.(r)) done);
  out

(* A 0-1 output is ascending by wire index iff its mask is a block of
   ones packed at the high wires. *)
let mask_sorted ~wires mask =
  let k = popcount mask in
  mask = ((1 lsl k) - 1) lsl (wires - k)

(* Arbitrary-length mask arrays, chunked into full eval_masks passes:
   the one lane-packing loop shared by the serve scheduler's 0-1 eval
   batching and the evolutionary fitness kernel. *)
let fold_masks c masks ~init ~f =
  let total = Array.length masks in
  let acc = ref init in
  let off = ref 0 in
  while !off < total do
    let k = min lanes (total - !off) in
    let out = eval_masks c (Array.sub masks !off k) in
    acc := f !acc ~off:!off out;
    off := !off + k
  done;
  !acc

let count_sorted_masks c masks =
  let wires = c.Compiled.wires in
  fold_masks c masks ~init:0 ~f:(fun acc ~off:_ out ->
      Array.fold_left
        (fun acc mask -> if mask_sorted ~wires mask then acc + 1 else acc)
        acc out)

let count_sorted_range c ~lo ~hi = hi - lo - count_unsorted_range c ~lo ~hi

(* --- wide lanes: 64 inputs per int64 Bigarray block ------------------

   The 63-lane paths above pack lanes into OCaml ints, losing one bit
   to the tag. Packing into an int64 Bigarray recovers the 64th lane
   and — more importantly — replaces the bit-by-bit gather/scatter of
   [eval_masks] with a 64x64 bit-matrix transpose (Hacker's Delight
   delta-swaps): ~3-5x on arbitrary-mask batches. OCaml's classic-mode
   compiler unboxes [Int64] arithmetic on [Array1.unsafe_get]/[set]
   chains in a tight loop, so the kernel runs at native word speed with
   no per-block allocation.

   The transpose below computes the *mirrored* transpose
   [T(A)[i].j = A[63-j].(63-i)]. Loading the 64 input masks in natural
   order therefore leaves wire [w]'s lane word — with the lane order
   bit-reversed — at row [63-w]. Comparators are lane-wise AND/OR, so
   the reversal is harmless; executing the instruction stream against
   reflected row indices and transposing again lands output mask [l]
   back at row [l] in natural order. The only per-gate cost of the
   convention is the [63 - wire] reflection. *)

let wide_lanes = 64

type scratch = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let scratch () : scratch = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout 64

(* In-place mirrored 64x64 bit transpose by recursive delta-swaps
   (j = 32, 16, ..., 1): after the call, bit j of row i is the old
   bit (63-i) of row (63-j). Involutive. *)
let transpose64 (a : scratch) =
  let j = ref 32 and m = ref 0x00000000FFFFFFFFL in
  while !j <> 0 do
    let jv = !j and mv = !m in
    let k = ref 0 in
    while !k < 64 do
      let kv = !k in
      let x = Bigarray.Array1.unsafe_get a kv
      and y = Bigarray.Array1.unsafe_get a (kv + jv) in
      let t = Int64.logand (Int64.logxor x (Int64.shift_right_logical y jv)) mv in
      Bigarray.Array1.unsafe_set a kv (Int64.logxor x t);
      Bigarray.Array1.unsafe_set a (kv + jv) (Int64.logxor y (Int64.shift_left t jv));
      k := (kv + jv + 1) land lnot jv
    done;
    m := Int64.logxor !m (Int64.shift_left !m (!j lsr 1));
    j := !j lsr 1
  done

let popcount64 x =
  popcount (Int64.to_int (Int64.logand x 0x3FFF_FFFF_FFFF_FFFFL))
  + popcount (Int64.to_int (Int64.shift_right_logical x 62))

let check_masks fn c masks =
  let n = c.Compiled.wires in
  Array.iteri
    (fun j mask ->
      if mask < 0 || (n < 62 && mask lsr n <> 0) then
        invalid_arg
          (Printf.sprintf "Bitslice.%s: mask %d at lane %d out of [0, 2^%d)" fn
             mask j n))
    masks

(* Load one block of masks, transpose, run the instruction stream
   against reflected rows. On return, row [63-w] holds wire [w]'s
   lane-reversed output word. *)
let exec_block (c : Compiled.t) (buf : scratch) masks ~off ~cnt =
  for r = 0 to cnt - 1 do
    Bigarray.Array1.unsafe_set buf r
      (Int64.of_int (Array.unsafe_get masks (off + r)))
  done;
  for r = cnt to 63 do
    Bigarray.Array1.unsafe_set buf r 0L
  done;
  transpose64 buf;
  let kinds = c.Compiled.kinds and ga = c.Compiled.ga and gb = c.Compiled.gb in
  for i = 0 to Bytes.length kinds - 1 do
    let a = 63 - Array.unsafe_get ga i and b = 63 - Array.unsafe_get gb i in
    let x = Bigarray.Array1.unsafe_get buf a
    and y = Bigarray.Array1.unsafe_get buf b in
    if Bytes.unsafe_get kinds i = '\000' then begin
      Bigarray.Array1.unsafe_set buf a (Int64.logand x y);
      Bigarray.Array1.unsafe_set buf b (Int64.logor x y)
    end
    else begin
      Bigarray.Array1.unsafe_set buf a y;
      Bigarray.Array1.unsafe_set buf b x
    end
  done

let eval_masks_wide ?scratch:buf c masks =
  check_masks "eval_masks_wide" c masks;
  let n = c.Compiled.wires in
  let buf = match buf with Some b -> b | None -> scratch () in
  let total = Array.length masks in
  let out = Array.make total 0 in
  let off = ref 0 in
  while !off < total do
    let cnt = min wide_lanes (total - !off) in
    exec_block c buf masks ~off:!off ~cnt;
    (match c.Compiled.take with
    | None -> ()
    | Some take ->
        (* route through the final output map before untransposing *)
        let routed = Array.init n (fun r -> Bigarray.Array1.get buf (63 - take.(r))) in
        for r = 0 to n - 1 do
          Bigarray.Array1.set buf (63 - r) routed.(r)
        done;
        for r = n to 63 do
          Bigarray.Array1.set buf (63 - r) 0L
        done);
    transpose64 buf;
    for r = 0 to cnt - 1 do
      out.(!off + r) <- Int64.to_int (Bigarray.Array1.unsafe_get buf r)
    done;
    off := !off + wide_lanes
  done;
  out

let count_sorted_masks_wide ?scratch:buf c masks =
  check_masks "count_sorted_masks_wide" c masks;
  let n = c.Compiled.wires in
  let buf = match buf with Some b -> b | None -> scratch () in
  let total = Array.length masks in
  let sorted = ref 0 in
  let off = ref 0 in
  while !off < total do
    let cnt = min wide_lanes (total - !off) in
    exec_block c buf masks ~off:!off ~cnt;
    (* violation lanes straight off the (reversed) wire rows — no
       second transpose: junk lanes beyond [cnt] evaluate the all-zero
       input and never violate, so popcount only sees real lanes *)
    let v = ref 0L in
    (match c.Compiled.take with
    | None ->
        for r = 0 to n - 2 do
          v :=
            Int64.logor !v
              (Int64.logand
                 (Bigarray.Array1.unsafe_get buf (63 - r))
                 (Int64.lognot (Bigarray.Array1.unsafe_get buf (63 - (r + 1)))))
        done
    | Some take ->
        for r = 0 to n - 2 do
          v :=
            Int64.logor !v
              (Int64.logand
                 (Bigarray.Array1.unsafe_get buf (63 - take.(r)))
                 (Int64.lognot
                    (Bigarray.Array1.unsafe_get buf (63 - take.(r + 1)))))
        done);
    sorted := !sorted + cnt - popcount64 !v;
    off := !off + wide_lanes
  done;
  !sorted

let check_width fn c =
  let n = c.Compiled.wires in
  if n >= 62 then
    invalid_arg (Printf.sprintf "Bitslice.%s: %d wires (2^n inputs)" fn n);
  n

let find_unsorted ?(domains = 1) c =
  let n = check_width "find_unsorted" c in
  let hi = 1 lsl n in
  if domains <= 1 then find_unsorted_range c ~lo:0 ~hi
  else begin
    let stop = Atomic.make false in
    let hits =
      Par.map_ranges ~domains ~lo:0 ~hi (fun ~lo ~hi ->
          find_unsorted_range ~stop c ~lo ~hi)
    in
    List.find_opt Option.is_some hits |> Option.join
  end

let count_unsorted ?(domains = 1) c =
  let n = check_width "count_unsorted" c in
  let hi = 1 lsl n in
  if domains <= 1 then count_unsorted_range c ~lo:0 ~hi
  else
    Par.map_ranges ~domains ~lo:0 ~hi (fun ~lo ~hi ->
        count_unsorted_range c ~lo ~hi)
    |> List.fold_left ( + ) 0

let is_sorting_network ?domains c = find_unsorted ?domains c = None
