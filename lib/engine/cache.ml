(* Structural compile cache: registry sorters and repeatedly verified
   networks compile once per process.  Keys are a canonical structural
   summary of the network (wires, per-level pre-permutation image and
   gate triples), so two independently built but identical networks
   share one compiled form.  Polymorphic hashing may truncate deep
   keys; equality is full structural comparison, so collisions only
   cost a probe, never a wrong hit.

   The cache is bounded by second-chance (clock) eviction: each entry
   carries a used bit, set on every hit; when the table is full the
   sweep hand (the insertion-order queue) clears used bits until it
   finds a cold entry to evict.  Hot entries — registry sorters hit on
   every verification — keep their bit set and survive arbitrarily
   many sweeps, unlike the wholesale reset this replaces. *)

type key = int * (int array option * (int * int * int) list) list

let canonical_key nw : key =
  ( Network.wires nw,
    List.map
      (fun lvl ->
        ( (match lvl.Network.pre with
          | None -> None
          | Some p -> Some (Perm.to_array p)),
          List.map
            (fun g ->
              match g with
              | Gate.Compare { lo; hi } -> (0, lo, hi)
              | Gate.Exchange { a; b } -> (1, a, b))
            lvl.Network.gates ))
      (Network.levels nw) )

type stats = { hits : int; misses : int; entries : int; evictions : int }

type entry = { compiled : Compiled.t; mutable used : bool }

(* Observability mirrors of the internal counters: the global registry
   is reset independently of [clear] (Obs.Metrics.reset vs tests
   resetting the cache), so both sets are kept. *)
let c_hits = Metrics.counter "engine.cache.hits"
let c_misses = Metrics.counter "engine.cache.misses"
let c_evictions = Metrics.counter "engine.cache.evictions"
let h_compile = Metrics.histogram "engine.cache.compile_s"

let lock = Mutex.create ()
let table : (key, entry) Hashtbl.t = Hashtbl.create 64
let order : key Queue.t = Queue.create ()
let capacity = ref 512
let hit_count = ref 0
let miss_count = ref 0
let evict_count = ref 0

(* Second-chance sweep; the caller holds [lock].  Terminates: a full
   rotation clears every used bit, so the second reaches a cold entry. *)
let evict_down_to target =
  while Hashtbl.length table > target do
    match Queue.take_opt order with
    | None -> assert false (* queue mirrors the table *)
    | Some k -> (
        match Hashtbl.find_opt table k with
        | None -> () (* unreachable: removal always dequeues first *)
        | Some e ->
            if e.used then begin
              e.used <- false;
              Queue.push k order
            end
            else begin
              Hashtbl.remove table k;
              incr evict_count;
              Metrics.incr c_evictions
            end)
  done

let set_capacity n =
  if n < 1 then invalid_arg "Cache.set_capacity: capacity must be >= 1";
  Mutex.lock lock;
  capacity := n;
  evict_down_to n;
  Mutex.unlock lock

let compile nw =
  let k = canonical_key nw in
  Mutex.lock lock;
  match Hashtbl.find_opt table k with
  | Some e ->
      e.used <- true;
      incr hit_count;
      Mutex.unlock lock;
      Metrics.incr c_hits;
      e.compiled
  | None ->
      (* count the miss at decision time, then compile outside the
         lock; concurrent duplicate compiles each count one miss *)
      incr miss_count;
      Mutex.unlock lock;
      Metrics.incr c_misses;
      let t0 = Clock.wall () in
      let c = Compiled.of_network nw in
      Metrics.observe h_compile (Clock.wall () -. t0);
      Mutex.lock lock;
      (* re-check: a racing domain may have inserted this key while we
         compiled.  First insert wins, so every caller gets the same
         physical compiled form and [entries] never double-counts. *)
      let result =
        match Hashtbl.find_opt table k with
        | Some e ->
            e.used <- true;
            e.compiled
        | None ->
            if Hashtbl.length table >= !capacity then
              evict_down_to (!capacity - 1);
            Hashtbl.replace table k { compiled = c; used = false };
            Queue.push k order;
            c
      in
      Mutex.unlock lock;
      result

let stats () =
  Mutex.lock lock;
  let s =
    { hits = !hit_count;
      misses = !miss_count;
      entries = Hashtbl.length table;
      evictions = !evict_count }
  in
  Mutex.unlock lock;
  s

let clear () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Queue.clear order;
  hit_count := 0;
  miss_count := 0;
  evict_count := 0;
  Mutex.unlock lock
