(* Structural compile cache: registry sorters and repeatedly verified
   networks compile once per process.  Keys are a canonical structural
   summary of the network (wires, per-level pre-permutation image and
   gate triples), so two independently built but identical networks
   share one compiled form.  Polymorphic hashing may truncate deep
   keys; equality is full structural comparison, so collisions only
   cost a probe, never a wrong hit. *)

type key = int * (int array option * (int * int * int) list) list

let canonical_key nw : key =
  ( Network.wires nw,
    List.map
      (fun lvl ->
        ( (match lvl.Network.pre with
          | None -> None
          | Some p -> Some (Perm.to_array p)),
          List.map
            (fun g ->
              match g with
              | Gate.Compare { lo; hi } -> (0, lo, hi)
              | Gate.Exchange { a; b } -> (1, a, b))
            lvl.Network.gates ))
      (Network.levels nw) )

type stats = { hits : int; misses : int; entries : int }

let max_entries = 512

let lock = Mutex.create ()
let table : (key, Compiled.t) Hashtbl.t = Hashtbl.create 64
let hit_count = ref 0
let miss_count = ref 0

let compile nw =
  let k = canonical_key nw in
  Mutex.lock lock;
  match Hashtbl.find_opt table k with
  | Some c ->
      incr hit_count;
      Mutex.unlock lock;
      c
  | None ->
      Mutex.unlock lock;
      (* compile outside the lock; a racing duplicate compile is
         harmless (last write wins, both results are equivalent) *)
      let c = Compiled.of_network nw in
      Mutex.lock lock;
      incr miss_count;
      if Hashtbl.length table >= max_entries then Hashtbl.reset table;
      Hashtbl.replace table k c;
      Mutex.unlock lock;
      c

let stats () =
  Mutex.lock lock;
  let s =
    { hits = !hit_count; misses = !miss_count; entries = Hashtbl.length table }
  in
  Mutex.unlock lock;
  s

let clear () =
  Mutex.lock lock;
  Hashtbl.reset table;
  hit_count := 0;
  miss_count := 0;
  Mutex.unlock lock
