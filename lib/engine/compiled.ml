type t = {
  wires : int;
  kinds : Bytes.t;
  ga : int array;
  gb : int array;
  level_off : int array;
  level_cmp : bool array;
  slots : int array array option;
  take : int array option;
  depth : int;
}

let kind_compare = '\000'
let kind_exchange = '\001'

let of_network nw =
  let n = Network.wires nw in
  let levels = Network.levels nw in
  let nlevels = List.length levels in
  let total =
    List.fold_left (fun acc l -> acc + List.length l.Network.gates) 0 levels
  in
  let has_pre = List.exists (fun l -> l.Network.pre <> None) levels in
  let kinds = Bytes.create total in
  let ga = Array.make total 0 in
  let gb = Array.make total 0 in
  let level_off = Array.make (nlevels + 1) total in
  let level_cmp = Array.make nlevels false in
  let slots = if has_pre then Some (Array.make nlevels [||]) else None in
  (* [slot.(r)] is the flattened slot currently holding the value the
     source network keeps in register [r]; same invariant as
     Network.flatten, maintained here so gates rewire through it. *)
  let slot = Array.init n (fun r -> r) in
  let gi = ref 0 in
  let depth = ref 0 in
  List.iteri
    (fun li lvl ->
      level_off.(li) <- !gi;
      (match lvl.Network.pre with
      | None -> ()
      | Some p ->
          let old = Array.copy slot in
          for r = 0 to n - 1 do
            slot.(Perm.apply p r) <- old.(r)
          done);
      (match slots with None -> () | Some s -> s.(li) <- Array.copy slot);
      List.iter
        (fun g ->
          (match g with
          | Gate.Compare { lo; hi } ->
              Bytes.set kinds !gi kind_compare;
              ga.(!gi) <- slot.(lo);
              gb.(!gi) <- slot.(hi);
              level_cmp.(li) <- true
          | Gate.Exchange { a; b } ->
              Bytes.set kinds !gi kind_exchange;
              ga.(!gi) <- slot.(a);
              gb.(!gi) <- slot.(b));
          incr gi)
        lvl.Network.gates;
      if level_cmp.(li) then incr depth)
    levels;
  let identity = Array.for_all2 ( = ) slot (Array.init n (fun r -> r)) in
  let take = if identity then None else Some (Array.copy slot) in
  { wires = n; kinds; ga; gb; level_off; level_cmp; slots; take;
    depth = !depth }

let wires t = t.wires
let depth t = t.depth
let levels t = Array.length t.level_cmp
let gate_count t = Bytes.length t.kinds

let comparators t =
  let c = ref 0 in
  Bytes.iter (fun k -> if k = kind_compare then incr c) t.kinds;
  !c

(* Execute gates [lo, hi) of the stream in place on [w]. Endpoints were
   validated against [wires] at compile time, hence the unsafe
   accesses. *)
let exec_range t w lo hi =
  let kinds = t.kinds and ga = t.ga and gb = t.gb in
  for i = lo to hi - 1 do
    let a = Array.unsafe_get ga i and b = Array.unsafe_get gb i in
    let x = Array.unsafe_get w a and y = Array.unsafe_get w b in
    if Bytes.unsafe_get kinds i = kind_compare then begin
      if x > y then begin
        Array.unsafe_set w a y;
        Array.unsafe_set w b x
      end
    end
    else begin
      Array.unsafe_set w a y;
      Array.unsafe_set w b x
    end
  done

let check_input t input =
  if Array.length input <> t.wires then
    invalid_arg
      (Printf.sprintf "Compiled.eval: input length %d <> wires %d"
         (Array.length input) t.wires)

let route_out t w =
  match t.take with
  | None -> w
  | Some take -> Array.init t.wires (fun r -> w.(take.(r)))

let eval t input =
  check_input t input;
  let w = Array.copy input in
  exec_range t w 0 (Bytes.length t.kinds);
  route_out t w

let eval_many ?(domains = 1) t inputs =
  let count = Array.length inputs in
  let out = Array.make count [||] in
  let run ~lo ~hi =
    for i = lo to hi - 1 do
      out.(i) <- eval t inputs.(i)
    done
  in
  if domains <= 1 then run ~lo:0 ~hi:count
  else
    (* chunks write disjoint index ranges of [out] *)
    ignore (Par.map_ranges ~domains ~lo:0 ~hi:count run);
  out

let scan_levels t input ~on_level =
  check_input t input;
  let n = t.wires in
  let w = Array.copy input in
  let scratch =
    match t.slots with Some _ -> Array.make n 0 | None -> [||]
  in
  let cmp_levels = ref 0 in
  let nlevels = Array.length t.level_cmp in
  for li = 0 to nlevels - 1 do
    exec_range t w t.level_off.(li) t.level_off.(li + 1);
    if t.level_cmp.(li) then incr cmp_levels;
    let view =
      match t.slots with
      | None -> w
      | Some s ->
          let sl = s.(li) in
          for r = 0 to n - 1 do
            scratch.(r) <- w.(sl.(r))
          done;
          scratch
    in
    on_level ~comparator_levels:!cmp_levels view
  done;
  match t.take with
  | None -> w
  | Some take -> Array.init n (fun r -> w.(take.(r)))
