(** Compiled form of a {!Network.t}: the immutable level/gate lists are
    lowered once into a flat, cache-friendly instruction stream so the
    per-input cost of evaluation is a single pass over int arrays with
    no list traversal, no option tests and no closure calls.

    Compilation performs the {!Network.flatten} slot analysis at compile
    time: every [pre] permutation is folded into the gate endpoints, so
    the executors never permute wire contents mid-stream. What remains
    of the permutations is (a) an optional final output routing [take]
    (output register [r] reads flattened slot [take.(r)]) and (b) an
    optional per-level register→slot map [slots] used only by
    {!scan_levels} to report intermediate states in the original
    register coordinates.

    A compiled network is immutable after construction and safe to
    share across OCaml 5 domains: every executor allocates its own
    working state. The fields are exposed read-only ([private]) for the
    other engine modules ({!Bitslice}) — treat their contents as
    frozen. *)

type t = private {
  wires : int;  (** number of registers *)
  kinds : Bytes.t;
      (** one byte per gate: ['\000'] compare (min to [ga]),
          ['\001'] unconditional exchange *)
  ga : int array;  (** first endpoint (flattened slot) per gate *)
  gb : int array;  (** second endpoint (flattened slot) per gate *)
  level_off : int array;
      (** length [levels + 1]; gates of level [i] occupy
          [level_off.(i) .. level_off.(i+1) - 1] *)
  level_cmp : bool array;  (** level contains at least one comparator *)
  slots : int array array option;
      (** register→slot map in effect at each level; [None] when the
          source network has no [pre] permutations (identity maps) *)
  take : int array option;
      (** final routing: output register [r] holds slot [take.(r)];
          [None] when that map is the identity *)
  depth : int;  (** number of comparator levels, as {!Network.depth} *)
}

val of_network : Network.t -> t
(** [of_network nw] compiles [nw]. Cost is one pass over the levels;
    the result is valid for the lifetime of the process. *)

val wires : t -> int

val depth : t -> int

val levels : t -> int
(** Total level count of the source network (including gate-free
    permutation levels). *)

val gate_count : t -> int
(** Total gates (comparators + exchanges) in the instruction stream. *)

val comparators : t -> int
(** Comparator gates only, as {!Network.size}. *)

val eval : t -> int array -> int array
(** [eval t input] is extensionally {!Network.eval} on the source
    network: a fresh output array, input untouched.
    @raise Invalid_argument on length mismatch. *)

val eval_many : ?domains:int -> t -> int array array -> int array array
(** [eval_many t inputs] evaluates a batch, amortising compilation and
    per-call setup over the sweep; [domains] (default 1) fans the batch
    out across OCaml 5 domains via {!Par.map_ranges}. Outputs are in
    input order. *)

val scan_levels :
  t ->
  int array ->
  on_level:(comparator_levels:int -> int array -> unit) ->
  int array
(** [scan_levels t input ~on_level] executes level by level, calling
    [on_level ~comparator_levels values] after each level with the
    number of comparator levels fired so far and the wire contents in
    the {e original register coordinates} (the array is a scratch
    buffer reused between calls — copy if retained, never mutate).
    Returns the final output, equal to [eval t input]. Used by
    {!Sort_depth} for the paper's average-case depth measure. *)
