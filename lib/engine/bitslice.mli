(** Word-parallel 0-1 evaluation of a compiled network.

    The 0-1 principle reduces exact sorting-network verification to the
    [2^n] inputs over {0,1}; on such inputs a comparator computes
    [(AND, OR)]. This module packs 63 {e independent} test inputs into
    one OCaml [int] per wire (one bit lane per input, bits 0–62), so a
    single pass over the compiled instruction stream evaluates 63
    inputs at once: a comparator is two word operations, an exchange a
    swap of two words, and the final output routing an index
    indirection in the sortedness check.

    Test input [t] (an [n]-bit integer) assigns bit [(t lsr w) land 1]
    to wire [w]. The initial wire words for a block of 63 consecutive
    [t] are built in O(wires) word operations from the periodicity of
    index bits — not bit by bit — so setup does not dominate shallow
    networks.

    Range sweeps compose with {!Par.map_ranges} for multicore fan-out;
    a shared {!Stdlib.Atomic} stop flag lets one domain's discovery
    short-circuit the others mid-range. *)

val lanes : int
(** Inputs per word: 63 (OCaml ints are 63-bit on 64-bit platforms). *)

val find_unsorted_range :
  ?stop:bool Atomic.t -> Compiled.t -> lo:int -> hi:int -> int option
(** [find_unsorted_range c ~lo ~hi] is [Some t] for the smallest test
    input [t] in [\[lo, hi)] that [c] leaves unsorted, or [None]. When
    [stop] is given, the sweep aborts early (returning [None]) once the
    flag becomes true, and sets the flag itself on discovery — the
    cross-domain short-circuit. *)

val count_unsorted_range : Compiled.t -> lo:int -> hi:int -> int
(** Number of test inputs in [\[lo, hi)] left unsorted. *)

val eval_masks : Compiled.t -> int array -> int array
(** [eval_masks c masks] evaluates up to {!lanes} {e arbitrary} 0-1
    test inputs — mask bit [w] is the value on wire [w] — in one
    word-parallel pass over the instruction stream, returning the
    output masks in input order (read through the final routing map
    when the source network permutes its outputs). Unlike the range
    sweeps above, the lanes need not be consecutive integers: this is
    the gather/batch/scatter entry point that lets a request scheduler
    pack unrelated clients' inputs into one shared pass.
    @raise Invalid_argument if more than {!lanes} masks are given or a
    mask is outside [0, 2^wires). *)

val mask_sorted : wires:int -> int -> bool
(** [mask_sorted ~wires m] is true iff the 0-1 vector encoded by [m]
    is ascending by wire index (all ones packed at the high wires) —
    the per-lane sortedness test for {!eval_masks} outputs. *)

val fold_masks :
  Compiled.t ->
  int array ->
  init:'a ->
  f:('a -> off:int -> int array -> 'a) ->
  'a
(** [fold_masks c masks ~init ~f] evaluates an {e arbitrary-length}
    mask array by chunking it into maximally-filled {!eval_masks}
    passes; after each pass, [f acc ~off out] receives the output masks
    of the lanes starting at input index [off] ([out] is in input
    order, [Array.length out <= lanes]). This is the one lane-packing
    loop in the tree: the serve scheduler's batched 0-1 evals and the
    evolutionary fitness kernel both sit on it rather than re-deriving
    the chunking. Raises like {!eval_masks} on an invalid mask. *)

val count_sorted_masks : Compiled.t -> int array -> int
(** Number of masks whose outputs are sorted ({!mask_sorted} over
    {!fold_masks}) — the population-fitness primitive on an explicit
    input sample. *)

val count_sorted_range : Compiled.t -> lo:int -> hi:int -> int
(** [hi - lo - count_unsorted_range c ~lo ~hi]: sorted-input count over
    a consecutive test-input range, using the fast periodic column
    setup rather than per-mask packing. The full-sweep fitness of a
    network is [count_sorted_range c ~lo:0 ~hi:(1 lsl wires)]. *)

val wide_lanes : int
(** 64 — inputs per block of the wide (int64 Bigarray) paths below. *)

type scratch
(** A reusable 64-word int64 Bigarray block for the wide paths: one
    allocation per caller (or per domain) instead of per call. Never
    share one scratch between concurrent domains. *)

val scratch : unit -> scratch

val eval_masks_wide : ?scratch:scratch -> Compiled.t -> int array -> int array
(** [eval_masks_wide c masks] evaluates an {e arbitrary-length} array
    of arbitrary 0-1 test inputs, 64 per pass, returning the output
    masks in input order — the >63-lane generalisation of
    {!eval_masks} / {!fold_masks}. Instead of gathering and scattering
    bit by bit, each 64-mask block is loaded into an int64 Bigarray and
    turned into wire-lane form by a 64x64 bit-matrix transpose
    (delta-swaps), the instruction stream runs once per block on
    unboxed int64 words, and a second transpose lands the outputs —
    3-5x the chunked {!eval_masks} path on large batches. Results are
    bit-identical to [fold_masks]. Raises like {!eval_masks} on an
    invalid mask. *)

val count_sorted_masks_wide : ?scratch:scratch -> Compiled.t -> int array -> int
(** {!count_sorted_masks} on the wide path: like {!eval_masks_wide} but
    the per-lane sortedness verdict is read as a violation word
    directly off the wire rows, skipping the output transpose entirely
    — the population-fitness primitive for explicit input samples. *)

val find_unsorted : ?domains:int -> Compiled.t -> int option
(** [find_unsorted c] sweeps all [2^wires] test inputs with up to
    [domains] (default 1) domains, short-circuiting every domain on
    first discovery. With [domains = 1] the result is the smallest
    failing input; with more, some failing input. [None] means [c]
    sorts. The caller is responsible for guarding [wires] (the sweep is
    exponential). *)

val count_unsorted : ?domains:int -> Compiled.t -> int
(** Exact number of unsorted 0-1 inputs out of [2^wires]. *)

val is_sorting_network : ?domains:int -> Compiled.t -> bool
(** [find_unsorted c = None]. *)
