type value = Int of int | Float of float | Str of string

type event = {
  ts : float;
  ev : string;
  name : string;
  fields : (string * value) list;
}

type t =
  | Null
  | Ndjson of { oc : out_channel; m : Mutex.t }
  | Memory of { events : event list ref; m : Mutex.t }
  | Tee of t * t

let null = Null
let ndjson oc = Ndjson { oc; m = Mutex.create () }

let memory () =
  let events = ref [] and m = Mutex.create () in
  let read () =
    Mutex.lock m;
    let l = List.rev !events in
    Mutex.unlock m;
    l
  in
  (Memory { events; m }, read)

let tee a b =
  match (a, b) with Null, s | s, Null -> s | a, b -> Tee (a, b)

let enabled = function Null -> false | Ndjson _ | Memory _ | Tee _ -> true

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_value buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      Buffer.add_string buf
        (if Float.is_finite f then Printf.sprintf "%.9g" f else "0")
  | Str s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'

let to_json e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "{\"ts\":%.6f,\"ev\":\"" e.ts);
  add_escaped buf e.ev;
  Buffer.add_string buf "\",\"name\":\"";
  add_escaped buf e.name;
  Buffer.add_char buf '"';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      add_escaped buf k;
      Buffer.add_string buf "\":";
      add_value buf v)
    e.fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let rec deliver t e =
  match t with
  | Null -> ()
  | Ndjson { oc; m } ->
      Mutex.lock m;
      output_string oc (to_json e);
      output_char oc '\n';
      flush oc;
      Mutex.unlock m
  | Memory { events; m } ->
      Mutex.lock m;
      events := e :: !events;
      Mutex.unlock m
  | Tee (a, b) ->
      deliver a e;
      deliver b e

let emit t ~ev ~name fields =
  match t with
  | Null -> ()
  | t -> deliver t { ts = Clock.wall (); ev; name; fields }
