(** Clocks for the observability layer.

    Budgets, span durations and event timestamps all read the {e wall}
    clock: [Unix.gettimeofday] monotonicised through a process-global
    high-water mark, so a system clock stepping backwards can never
    produce a negative duration or re-trip a time budget early. CPU
    time ({!Sys.time}) is reported alongside wall time where useful —
    it sums over OCaml domains, so on a multicore run it exceeds wall
    time by up to the domain count. *)

val wall : unit -> float
(** Wall-clock seconds since the Unix epoch, never decreasing within
    the process. Domain-safe (lock-free). *)

val cpu : unit -> float
(** Process CPU seconds ({!Sys.time}); sums over all domains. *)
