(** Observability umbrella: [Obs.Clock], [Obs.Metrics], [Obs.Sink],
    [Obs.Span], plus the renderer-agnostic summary the CLI and bench
    harness turn into tables / JSON.

    The layer is dependency-free (stdlib + [Unix] only) and costs
    nothing when disabled: counters are single atomic adds, spans with
    a {!Sink.null} sink skip the clock reads entirely. The hot
    subsystems record into it unconditionally — [Engine.Cache]
    (hits / misses / evictions / compile time), [Search.Driver]
    (per-level spans and counters), the adversary (per-block spans)
    and [Verify.Zero_one] (inputs swept, inputs/sec) — and the edges
    surface it: [snlb ... --trace FILE] streams NDJSON events,
    [--metrics] prints this summary, [make bench-json] folds the
    counters into the BENCH files. *)

module Clock = Clock
module Metrics = Metrics
module Sink = Sink
module Span = Span

val summary : unit -> (string * string) list
(** Every registered metric as a [(name, rendered value)] row, sorted
    by name: counters verbatim, histograms expanded into
    [name.count], [name.mean], [name.min], [name.max] (empty
    histograms render min/max as ["-"]). *)
