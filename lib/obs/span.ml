type t = { sink : Sink.t; mutable extra : (string * Sink.value) list }

(* Span nesting is tracked per *thread*, not per domain: systhreads
   within one domain share Domain.DLS, so a DLS stack would let
   concurrent threads (e.g. serve sessions) push onto each other's
   paths. Keyed by Thread.id; a thread's entry is removed when its
   stack empties so the table does not grow with dead threads. *)
let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8
let stacks_m = Mutex.create ()

let push name =
  let id = Thread.id (Thread.self ()) in
  Mutex.lock stacks_m;
  let st = name :: Option.value (Hashtbl.find_opt stacks id) ~default:[] in
  Hashtbl.replace stacks id st;
  Mutex.unlock stacks_m;
  String.concat "/" (List.rev st)

let pop () =
  let id = Thread.id (Thread.self ()) in
  Mutex.lock stacks_m;
  (match Hashtbl.find_opt stacks id with
  | Some (_ :: (_ :: _ as tl)) -> Hashtbl.replace stacks id tl
  | Some _ | None -> Hashtbl.remove stacks id);
  Mutex.unlock stacks_m

let add sp k v =
  if Sink.enabled sp.sink then sp.extra <- (k, v) :: sp.extra

let run ?(sink = Sink.null) ~name f =
  if not (Sink.enabled sink) then f { sink; extra = [] }
  else begin
    let path = push name in
    let w0 = Clock.wall () and c0 = Clock.cpu () in
    let sp = { sink; extra = [] } in
    match f sp with
    | r ->
        pop ();
        Sink.emit sink ~ev:"span" ~name:path
          (("wall_s", Sink.Float (Clock.wall () -. w0))
          :: ("cpu_s", Sink.Float (Clock.cpu () -. c0))
          :: List.rev sp.extra);
        r
    | exception e ->
        pop ();
        raise e
  end
