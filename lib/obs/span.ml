type t = { sink : Sink.t; mutable extra : (string * Sink.value) list }

let stack : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let add sp k v =
  if Sink.enabled sp.sink then sp.extra <- (k, v) :: sp.extra

let run ?(sink = Sink.null) ~name f =
  if not (Sink.enabled sink) then f { sink; extra = [] }
  else begin
    let st = Domain.DLS.get stack in
    st := name :: !st;
    let path = String.concat "/" (List.rev !st) in
    let w0 = Clock.wall () and c0 = Clock.cpu () in
    let sp = { sink; extra = [] } in
    match f sp with
    | r ->
        st := List.tl !st;
        Sink.emit sink ~ev:"span" ~name:path
          (("wall_s", Sink.Float (Clock.wall () -. w0))
          :: ("cpu_s", Sink.Float (Clock.cpu () -. c0))
          :: List.rev sp.extra);
        r
    | exception e ->
        st := List.tl !st;
        raise e
  end
