module Clock = Clock
module Metrics = Metrics
module Sink = Sink
module Span = Span

let pp_float v =
  if Float.is_finite v then Printf.sprintf "%.4g" v else "-"

let summary () =
  let counter_rows =
    List.map (fun (name, v) -> (name, string_of_int v)) (Metrics.counters ())
  in
  let hist_rows =
    List.concat_map
      (fun (name, (s : Metrics.summary)) ->
        [ (name ^ ".count", string_of_int s.Metrics.count);
          (name ^ ".mean", pp_float (Metrics.mean s));
          (name ^ ".min", pp_float s.Metrics.min);
          (name ^ ".max", pp_float s.Metrics.max) ])
      (Metrics.histograms ())
  in
  List.sort compare (counter_rows @ hist_rows)
