(* The high-water mark makes gettimeofday monotone per process: a
   reading below an earlier one (NTP step, manual clock change) is
   replaced by the earlier one, so durations never go negative. *)

let high_water = Atomic.make neg_infinity

let wall () =
  let t = Unix.gettimeofday () in
  let rec raise_to () =
    let prev = Atomic.get high_water in
    if t <= prev then prev
    else if Atomic.compare_and_set high_water prev t then t
    else raise_to ()
  in
  raise_to ()

let cpu = Sys.time
