(** Event sinks: where observability events go.

    An event is a wall-clock-stamped, named record with typed fields.
    Producers emit unconditionally; the sink decides the cost:
    {!null} drops everything (and {!enabled} lets hot code skip even
    building the field list), {!ndjson} streams one JSON object per
    line to a channel — the [--trace FILE] format — and {!memory}
    accumulates events for tests and in-process consumers. All sinks
    are domain-safe. *)

type value = Int of int | Float of float | Str of string

type event = {
  ts : float;  (** wall-clock stamp ({!Clock.wall}) *)
  ev : string;  (** event kind, e.g. ["span"] *)
  name : string;  (** hierarchical name, ["/"]-separated *)
  fields : (string * value) list;
}

type t

val null : t
(** Drops every event. *)

val ndjson : out_channel -> t
(** One JSON object per line, flushed per event so a consumer tailing
    the file sees live progress. Writes are serialised by a mutex. *)

val memory : unit -> t * (unit -> event list)
(** A sink plus a reader returning everything emitted so far, in
    emission order. *)

val tee : t -> t -> t
(** Emit to both (a [null] operand collapses away). *)

val enabled : t -> bool
(** [false] exactly for {!null}: lets producers skip building fields. *)

val emit : t -> ev:string -> name:string -> (string * value) list -> unit
(** Stamp with {!Clock.wall} and deliver. No-op on {!null}. *)

val to_json : event -> string
(** One-line JSON object: keys [ts], [ev], [name], then the fields
    (strings escaped per RFC 8259; non-finite floats serialise as 0). *)
