(** Named counters and histograms in a process-global registry.

    A counter is an atomic int, so the hot subsystems (compile cache,
    search driver, 0-1 verifier) can record events from any domain
    without locking; an increment is one [Atomic.fetch_and_add].
    A histogram records count / sum / min / max plus power-of-two
    magnitude buckets, guarded by a per-histogram mutex (observations
    are rare next to counter bumps — compile times, sweep rates).

    Handles are obtained by name and interned: [counter "x"] twice
    returns the same cell, so independent modules naming the same
    metric share it. {!reset} zeroes every registered metric {e in
    place} — handles held at module initialisation stay valid. *)

type counter

val counter : string -> counter
(** Get-or-create the counter registered under this name. *)

val incr : counter -> unit

val add : counter -> int -> unit

val value : counter -> int

type histogram

val histogram : string -> histogram
(** Get-or-create the histogram registered under this name. *)

val observe : histogram -> float -> unit
(** Record one observation. Non-finite values are dropped. *)

type summary = {
  count : int;
  sum : float;
  min : float;  (** [infinity] while empty *)
  max : float;  (** [neg_infinity] while empty *)
  buckets : int array;
      (** bucket [i] counts observations [v] with
          [2^(i-32) <= v < 2^(i-31)] (clamped at both ends); the
          bucket counts sum to [count] *)
}

val snapshot : histogram -> summary

val mean : summary -> float
(** [sum / count], or [0.] while empty. *)

val counters : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name. *)

val histograms : unit -> (string * summary) list
(** Every registered histogram with its snapshot, sorted by name. *)

val reset : unit -> unit
(** Zero every registered counter and histogram (tests, benchmarks).
    Registration survives: existing handles keep recording. *)
