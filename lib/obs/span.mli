(** Hierarchical timed spans.

    [run ~sink ~name f] times [f] and emits one ["span"] event on
    successful return, carrying [wall_s] and [cpu_s] plus any fields
    the body attached with {!add}. Nesting is tracked per domain
    ([Domain.DLS]), so the event's [name] is the ["/"]-joined path of
    enclosing spans — e.g. a {!Lemma41} span inside a {!Theorem41}
    block reports as ["adversary/block/lemma41"] — and spans opened
    concurrently on different domains never interleave paths.

    With a disabled sink ({!Sink.null}) the body runs with no clock
    reads, no stack push and no allocation beyond the span handle —
    the instrumented hot paths cost nothing when nobody is watching.
    A raising body pops the stack but emits nothing. *)

type t

val add : t -> string -> Sink.value -> unit
(** Attach a field to the enclosing span's close event (emission
    order follows attachment order). No-op on a disabled sink. *)

val run : ?sink:Sink.t -> name:string -> (t -> 'a) -> 'a
