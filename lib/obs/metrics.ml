type counter = { cell : int Atomic.t }

type histogram = {
  hlock : Mutex.t;
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  hbuckets : int array;
}

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : int array;
}

let nbuckets = 64

(* bucket i covers [2^(i-32), 2^(i-31)): i = 32 + floor (log2 v),
   clamped into [0, 63]; zero and negative observations land in 0 *)
let bucket_of v =
  if v <= 0. then 0
  else
    let l = int_of_float (Float.floor (Float.log2 v)) in
    Int.min (nbuckets - 1) (Int.max 0 (l + 32))

(* The registry: interned handles keyed by name. The lock guards only
   registration and enumeration, never the recording hot path. *)
let lock = Mutex.create ()
let counter_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let hist_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  Mutex.lock lock;
  let c =
    match Hashtbl.find_opt counter_tbl name with
    | Some c -> c
    | None ->
        let c = { cell = Atomic.make 0 } in
        Hashtbl.add counter_tbl name c;
        c
  in
  Mutex.unlock lock;
  c

let incr c = ignore (Atomic.fetch_and_add c.cell 1)
let add c n = ignore (Atomic.fetch_and_add c.cell n)
let value c = Atomic.get c.cell

let fresh_hist () =
  { hlock = Mutex.create ();
    count = 0;
    sum = 0.;
    vmin = infinity;
    vmax = neg_infinity;
    hbuckets = Array.make nbuckets 0 }

let histogram name =
  Mutex.lock lock;
  let h =
    match Hashtbl.find_opt hist_tbl name with
    | Some h -> h
    | None ->
        let h = fresh_hist () in
        Hashtbl.add hist_tbl name h;
        h
  in
  Mutex.unlock lock;
  h

let observe h v =
  if Float.is_finite v then begin
    Mutex.lock h.hlock;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v;
    h.hbuckets.(bucket_of v) <- h.hbuckets.(bucket_of v) + 1;
    Mutex.unlock h.hlock
  end

let snapshot h =
  Mutex.lock h.hlock;
  let s =
    { count = h.count;
      sum = h.sum;
      min = h.vmin;
      max = h.vmax;
      buckets = Array.copy h.hbuckets }
  in
  Mutex.unlock h.hlock;
  s

let mean s = if s.count = 0 then 0. else s.sum /. float_of_int s.count

let sorted_bindings tbl f =
  Mutex.lock lock;
  let xs = Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl [] in
  Mutex.unlock lock;
  List.map (fun (name, v) -> (name, f v))
    (List.sort (fun (a, _) (b, _) -> compare a b) xs)

let counters () = sorted_bindings counter_tbl (fun c -> value c)
let histograms () = sorted_bindings hist_tbl snapshot

let reset () =
  Mutex.lock lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counter_tbl;
  Hashtbl.iter
    (fun _ h ->
      Mutex.lock h.hlock;
      h.count <- 0;
      h.sum <- 0.;
      h.vmin <- infinity;
      h.vmax <- neg_infinity;
      Array.fill h.hbuckets 0 nbuckets 0;
      Mutex.unlock h.hlock)
    hist_tbl;
  Mutex.unlock lock
