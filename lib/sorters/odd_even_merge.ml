let network ~n =
  if not (Bitops.is_power_of_two n) || n < 2 then
    invalid_arg (Printf.sprintf "Odd_even_merge.network: n=%d must be a power of two >= 2" n);
  let levels = ref [] in
  let p = ref 1 in
  while !p < n do
    let k = ref !p in
    while !k >= 1 do
      let gates = ref [] in
      let j = ref (!k mod !p) in
      while !j <= n - 1 - !k do
        for i = 0 to min (!k - 1) (n - 1 - !j - !k) do
          if (i + !j) / (2 * !p) = (i + !j + !k) / (2 * !p) then
            gates := Gate.compare_up (i + !j) (i + !j + !k) :: !gates
        done;
        j := !j + (2 * !k)
      done;
      levels := List.rev !gates :: !levels;
      k := !k / 2
    done;
    p := !p * 2
  done;
  Network.of_gate_levels ~wires:n (List.rev !levels)

let size_formula ~n =
  let d = Bitops.log2_exact n in
  (((d * d) - d + 4) * (1 lsl (d - 2))) - 1
