type entry = { name : string; build : int -> Network.t; pow2_only : bool }

let bitonic_shuffle_circuit n =
  Network.flatten (Register_model.to_network (Bitonic.shuffle_program ~n))

let all =
  [ { name = "transposition"; build = (fun n -> Transposition.network ~n); pow2_only = false };
    { name = "insertion"; build = (fun n -> Insertion_net.network ~n); pow2_only = false };
    { name = "pratt"; build = (fun n -> Pratt.network ~n); pow2_only = false };
    { name = "periodic"; build = (fun n -> Periodic.network ~n); pow2_only = true };
    { name = "odd-even-merge"; build = (fun n -> Odd_even_merge.network ~n); pow2_only = true };
    { name = "bitonic"; build = (fun n -> Bitonic.network ~n); pow2_only = true };
    { name = "bitonic-shuffle"; build = bitonic_shuffle_circuit; pow2_only = true };
    { name = "shellsort-shell";
      build = (fun n -> Shellsort_net.network ~n ~increments:(Shellsort_net.shell ~n));
      pow2_only = false };
    { name = "shellsort-ciura";
      build = (fun n -> Shellsort_net.network ~n ~increments:(Shellsort_net.ciura ~n));
      pow2_only = false } ]

let find name = List.find_opt (fun e -> e.name = name) all

let names = List.map (fun e -> e.name) all
