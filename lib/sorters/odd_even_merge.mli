(** Batcher's odd-even merge sorting network.

    The second classic [Theta(lg^2 n)]-depth construction from
    Batcher's 1968 paper; same asymptotic depth as bitonic with a
    slightly smaller comparator count. Serves as an additional
    baseline in the benchmark harness. *)

val network : n:int -> Network.t
(** [network ~n] sorts [n = 2^d] wires ascending.
    Depth is [lg n (lg n + 1) / 2]. *)

val size_formula : n:int -> int
(** Comparator count [(d^2 - d + 4) * 2^(d-2) - 1] for [n = 2^d]. *)
