let check_n fn n =
  if not (Bitops.is_power_of_two n) || n < 2 then
    invalid_arg (Printf.sprintf "Bitonic.%s: n=%d must be a power of two >= 2" fn n)

let network ~n =
  check_n "network" n;
  let levels = ref [] in
  let k = ref 2 in
  while !k <= n do
    let j = ref (!k / 2) in
    while !j >= 1 do
      let gates = ref [] in
      for i = 0 to n - 1 do
        let partner = i lxor !j in
        if partner > i then
          if i land !k = 0 then gates := Gate.compare_up i partner :: !gates
          else gates := Gate.compare_down i partner :: !gates
      done;
      levels := List.rev !gates :: !levels;
      j := !j / 2
    done;
    k := !k * 2
  done;
  Network.of_gate_levels ~wires:n (List.rev !levels)

let depth_formula ~n =
  let d = Bitops.log2_exact n in
  d * (d + 1) / 2

(* Stage [t] of a shuffle block acts, in block-input coordinates, on the
   pairs [(o, o + 2^(d-t))] with [o = rotr^t (2m)] for register pair
   [(2m, 2m+1)].  The merge of phase [s] (phase length [2^s]) must
   compare across bits [s-1 .. 0], i.e. occupy stages [d-s+1 .. d]; its
   direction at pair base [o] is ascending iff [o land 2^s = 0]
   (always ascending in the final phase [s = d]). *)
let shuffle_program ~n =
  check_n "shuffle_program" n;
  let d = Bitops.log2_exact n in
  let rotr ~count x =
    let k = count mod d in
    if k = 0 then x else ((x lsr k) lor (x lsl (d - k))) land (n - 1)
  in
  let stage_ops ~s ~t =
    if t <= d - s then Array.make (n / 2) Register_model.Zero
    else
      Array.init (n / 2) (fun m ->
          let o = rotr ~count:t (2 * m) in
          if s = d || o land (1 lsl s) = 0 then Register_model.Plus
          else Register_model.Minus)
  in
  let opss =
    List.concat_map
      (fun s0 ->
        let s = s0 + 1 in
        List.init d (fun t0 -> stage_ops ~s ~t:(t0 + 1)))
      (List.init d (fun s0 -> s0))
  in
  Register_model.shuffle_program ~n opss

let as_iterated ~n = Shuffle_net.to_iterated (shuffle_program ~n)
