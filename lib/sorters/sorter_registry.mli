(** A uniform view of all baseline sorters, for tests, benches and the
    CLI. *)

type entry = {
  name : string;
  build : int -> Network.t;  (** takes [n] *)
  pow2_only : bool;
      (** whether [build] requires [n] to be a power of two *)
}

val all : entry list
(** Every sorter in the library, in roughly increasing sophistication:
    transposition, insertion, pratt, periodic, odd-even merge, bitonic,
    bitonic-shuffle (the register program flattened to a circuit), and
    two generic Shellsort networks (Shell / Ciura increments). *)

val find : string -> entry option
(** Lookup by [name]. *)

val names : string list
