(** Batcher's bitonic sorting network.

    This is the paper's upper bound: a shuffle-based sorting network of
    depth [Theta(lg^2 n)]. The module provides both the classic
    circuit form (depth exactly [lg n (lg n + 1) / 2]) and the
    shuffle-based register program (Stone's scheme: [lg n] passes of
    [lg n] shuffle stages each, depth [lg^2 n] counting the padded
    stages), which witnesses membership in the class the lower bound
    speaks about. *)

val network : n:int -> Network.t
(** [network ~n] is the classic iterative bitonic sorter on [n = 2^d]
    wires, sorting ascending by wire index.
    Depth is [d (d + 1) / 2]. *)

val depth_formula : n:int -> int
(** [lg n (lg n + 1) / 2] — the closed form used by experiment E5. *)

val shuffle_program : n:int -> Register_model.t
(** [shuffle_program ~n] is the shuffle-based register program for the
    bitonic sorter: [lg n] blocks of [lg n] shuffle stages; the merge
    of phase [s] occupies the last [s] stages of block [s], earlier
    stages of the block being "0" (pass-through). Its outputs appear in
    register order, sorted ascending. *)

val as_iterated : n:int -> Iterated.t
(** The shuffle program decomposed into reverse delta blocks via
    {!Shuffle_net.to_iterated} — the form consumed by the adversary in
    experiment E6. *)
