let network ~n =
  if n < 1 then invalid_arg "Insertion_net.network: n must be >= 1";
  (* The parallel (triangular) form: at time t = 0 .. 2n-4, fire all
     comparators (i, i+1) with i + i = t or t - 1 ... equivalently the
     diagonal wavefronts of the insertion-sort triangle.  Level t holds
     pairs (i, i+1) with i <= t and i ≡ t (mod 2). *)
  let levels =
    List.init (max 0 ((2 * n) - 3)) (fun t ->
        let gates = ref [] in
        let i = ref (t mod 2) in
        while !i <= min t (n - 2) do
          gates := Gate.compare_up !i (!i + 1) :: !gates;
          i := !i + 2
        done;
        List.rev !gates)
  in
  Network.of_gate_levels ~wires:n levels
