(** The triangular insertion/bubble sorting network (Knuth 5.3.4,
    Fig. 45): the naive [O(n)]-depth, [O(n^2)]-size construction.
    Included as the low end of the baseline spectrum. Works for any
    [n >= 1]; depth is [2n - 3] for [n >= 2]. *)

val network : n:int -> Network.t
