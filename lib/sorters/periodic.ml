let check_n fn n =
  if not (Bitops.is_power_of_two n) || n < 2 then
    invalid_arg (Printf.sprintf "Periodic.%s: n=%d must be a power of two >= 2" fn n)

let block ~n =
  check_n "block" n;
  let d = Bitops.log2_exact n in
  let level s =
    let mask = (1 lsl (d - s + 1)) - 1 in
    let gates = ref [] in
    for i = 0 to n - 1 do
      let partner = i lxor mask in
      if partner > i then gates := Gate.compare_up i partner :: !gates
    done;
    List.rev !gates
  in
  Network.of_gate_levels ~wires:n (List.init d (fun s0 -> level (s0 + 1)))

let network ~n =
  check_n "network" n;
  let d = Bitops.log2_exact n in
  let b = block ~n in
  let rec go acc k = if k = 0 then acc else go (Network.serial acc b) (k - 1) in
  go (Network.empty n) d
