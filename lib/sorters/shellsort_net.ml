let shell ~n =
  let rec go acc h = if h >= 1 then go (h :: acc) (h / 2) else List.rev acc in
  if n <= 1 then [ 1 ] else go [] (n / 2)

let hibbard ~n =
  let rec go acc h = if h < n then go (h :: acc) ((2 * h) + 1) else acc in
  match go [] 1 with [] -> [ 1 ] | incs -> incs

let pratt ~n = Pratt.increments ~n

let ciura ~n =
  let base = [ 1; 4; 10; 23; 57; 132; 301; 701; 1750 ] in
  let rec extend acc last =
    let next = int_of_float (ceil (float_of_int last *. 2.25)) in
    if next >= n then acc else extend (next :: acc) next
  in
  (* descending, extended by the conventional 2.25 growth factor *)
  let seq = extend (List.rev base) 1750 in
  match List.filter (fun h -> h < n) seq with [] -> [ 1 ] | l -> l

let network ~n ~increments =
  if n < 1 then invalid_arg "Shellsort_net.network: n must be >= 1";
  List.iter
    (fun h ->
      if h < 1 || (h >= n && n > 1) then
        invalid_arg (Printf.sprintf "Shellsort_net.network: increment %d out of [1,%d)" h n))
    increments;
  (* One h-sort pass: odd-even transposition restricted to h-chains.
     Level parity alternates which chain positions fire; chains are
     interleaved so all comparators of a level touch disjoint wires. *)
  let pass h =
    let chain_len = (n + h - 1) / h in
    List.init (max 1 chain_len) (fun t ->
        let gates = ref [] in
        for i = 0 to n - 1 - h do
          if i / h mod 2 = t mod 2 then gates := Gate.compare_up i (i + h) :: !gates
        done;
        List.rev !gates)
  in
  Network.of_gate_levels ~wires:n (List.concat_map pass increments)

let families =
  [ ("shell", fun ~n -> shell ~n);
    ("hibbard", fun ~n -> hibbard ~n);
    ("pratt", fun ~n -> pratt ~n);
    ("ciura", fun ~n -> ciura ~n) ]

let family name = List.assoc_opt name families

let family_names = List.map fst families
