let increments ~n =
  let rec twos acc p = if p >= n then acc else twos (p :: acc) (p * 2) in
  let rec threes acc h = if h >= n then acc else threes (twos acc h) (h * 3) in
  List.sort (fun a b -> compare b a) (threes [] 1)

let network ~n =
  if n < 1 then invalid_arg "Pratt.network: n must be >= 1";
  let pass h parity =
    let gates = ref [] in
    for i = 0 to n - 1 - h do
      if i / h mod 2 = parity then gates := Gate.compare_up i (i + h) :: !gates
    done;
    List.rev !gates
  in
  let levels =
    List.concat_map (fun h -> [ pass h 0; pass h 1 ]) (increments ~n)
  in
  Network.of_gate_levels ~wires:n levels
