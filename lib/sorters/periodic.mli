(** The periodic balanced sorting network (Dowd, Perl, Rudolph, Saks).

    [lg n] identical blocks of [lg n] levels; level [s] of a block
    compares each wire [i] with [i XOR (2^(lg n - s + 1) - 1)], min to
    the lower index. Its interest here: the block is level-structured
    like a delta network and the whole sorter has depth [lg^2 n],
    another member of the "simple, regular, lg^2" family the paper's
    introduction surveys. *)

val block : n:int -> Network.t
(** One balanced-merger block ([lg n] levels). *)

val network : n:int -> Network.t
(** [lg n] consecutive blocks; sorts [n = 2^d] wires ascending. *)
