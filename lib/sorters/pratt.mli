(** Pratt's Shellsort sorting network (3-smooth increments).

    The paper situates its result next to Cypher's lower bound for
    Shellsort-based sorting networks; Pratt's construction is the
    classic member of that class with depth [Theta(lg^2 n)]. For each
    increment [h = 2^p 3^q < n] in decreasing order, one
    compare-exchange pass over all pairs [(i, i+h)] suffices because
    the input is already [2h]- and [3h]-sorted, which makes the
    remaining inversions vertex-disjoint; the pass is scheduled as two
    comparator levels (pairs with even, then odd, [i / h]). *)

val increments : n:int -> int list
(** All 3-smooth numbers below [n], decreasing. *)

val network : n:int -> Network.t
(** [network ~n] sorts any [n >= 1] ascending, with
    [2 * |increments ~n|] levels. *)
