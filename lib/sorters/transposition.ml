let network ~n =
  if n < 1 then invalid_arg "Transposition.network: n must be >= 1";
  let brick parity =
    let gates = ref [] in
    let i = ref parity in
    while !i + 1 < n do
      gates := Gate.compare_up !i (!i + 1) :: !gates;
      i := !i + 2
    done;
    List.rev !gates
  in
  Network.of_gate_levels ~wires:n (List.init n (fun t -> brick (t mod 2)))
