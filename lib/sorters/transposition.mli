(** Odd-even transposition (brick) sort: the depth-[n] baseline.

    Asymptotically far worse than Batcher but trivially correct; used
    in tests as a known-good oracle and in benches to anchor the
    depth axis. Works for any [n >= 1]. *)

val network : n:int -> Network.t
(** [n] levels alternating the even and odd adjacent-pair bricks;
    sorts ascending. *)
