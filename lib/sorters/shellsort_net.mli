(** Shellsort-based sorting networks for arbitrary increment sequences.

    The paper's introduction situates its bound next to Cypher's
    [Omega(lg^2 n / lglg n)] lower bound for Shellsort networks with
    monotonically decreasing increments [3] and the later general bound
    [13]. This module builds the class generically so the experiment
    harness (E12) can compare increment families: for each increment
    [h] the [h]-sort pass is realised as a full odd-even transposition
    sweep over every [h]-chain, which sorts the chains unconditionally
    — correct for {e any} decreasing increment sequence ending in 1,
    at the price of [ceil(n/h)] levels per increment. (Pratt's family
    admits the 2-level shortcut implemented in {!Pratt}; generic
    families do not.) *)

val shell : n:int -> int list
(** Shell's original halving sequence [n/2, n/4, ..., 1]. *)

val hibbard : n:int -> int list
(** Hibbard's [2^k - 1] increments, decreasing. *)

val pratt : n:int -> int list
(** Pratt's 3-smooth increments (same as {!Pratt.increments}). *)

val ciura : n:int -> int list
(** Ciura's empirically tuned sequence [1, 4, 10, 23, 57, 132, 301,
    701, 1750], extended by factor 2.25, truncated below [n],
    decreasing. *)

val network : n:int -> increments:int list -> Network.t
(** [network ~n ~increments] builds the Shellsort network: for each
    increment [h] in order, [ceil(n/h)] alternating brick levels of
    comparators [(i, i+h)]. The final increment must be 1 for the
    result to be a sorting network (validated in tests via the 0-1
    principle, not here).
    @raise Invalid_argument if an increment is not in [1, n). *)

val family : string -> (n:int -> int list) option
(** Lookup by name: "shell", "hibbard", "pratt", "ciura". *)

val family_names : string list
