(** Continuous differential fuzzing of the verification stack.

    Every sampled random genome is pushed through five independent
    oracles and any disagreement is a bug in this repository, not in
    the network:

    - {b engine vs interpreter}: the compiled bit-sliced sweep's
      unsorted count must equal a gate-by-gate {!Network.eval} count
      over all [2^n] zero-one inputs, and the engine's witness (when
      one exists) must really evaluate unsorted;
    - {b analyzer vs engine}: the exact reachable-set domain's
      sortedness verdict ({!Analysis.Sorting_proved} /
      [Sorting_refuted]) must match the engine, a refutation mask must
      be a genuinely unsorted, genuinely reachable output, and
      removing analyzer-proved dead gates
      (or flipping redundant ones) must leave the network's 0-1
      behaviour bit-identical;
    - {b adversary vs engine}: a fooling-pair certificate extracted
      from the {!Naive} adversary's final pattern must validate and
      must contradict no engine "sorts" verdict;
    - {b certifier vs checker}: the analyzer's proof-carrying
      sortedness and dead-gate certificates ({!Analysis_cert}) must
      agree in kind with the engine's verdict, round-trip through the
      portable text format byte for byte, and be accepted by the
      independent {!Cert} checker;
    - {b known optima}: a network the engine certifies as sorting
      cannot be shallower than the proved minimal depth for its width
      (Bundala–Závodný, via {!Evolve.known_optimal_depth}).

    Disagreements are {!minimize}d greedily (drop comparators while
    the check still fails) into small reproducible reports carrying
    the seed and sample index. Per-genome sampling streams are carved
    from one seed with {!Xoshiro.jump}, so any single index is
    replayable without regenerating its predecessors.

    Observability: ["fuzz.networks"] and ["fuzz.disagreements"]. *)

type disagreement = {
  index : int;  (** 0-based sample index under [seed] *)
  kind : string;  (** which oracle pair disagreed *)
  detail : string;
  genome : Genome.t;  (** minimized reproducer *)
  original : Genome.t;  (** the genome as sampled *)
}

type report = {
  checked : int;
  disagreements : disagreement list;  (** in discovery order *)
  elapsed : float;  (** wall-clock seconds *)
}

val check_genome : Genome.t -> (unit, string * string) result
(** Run every oracle pair on one genome ([wires <= 12] for the exact
    analyzer domain); [Error (kind, detail)] on the first
    disagreement. *)

val genome_at : seed:int -> index:int -> Genome.t
(** The [index]-th genome of the [seed] stream (width in [\[2, 8\]],
    shape in [\[1, 8\]], varied density) — the reproducer mapping for
    reports. *)

val minimize : Genome.t -> fails:(Genome.t -> bool) -> Genome.t
(** Greedy delta-debugging: repeatedly drop any single comparator
    whose removal keeps [fails] true, until none does. The result
    still fails and is 1-minimal under comparator removal. *)

val run :
  ?sink:Sink.t ->
  ?cancel:Cancel.t ->
  ?seconds:float ->
  ?count:int ->
  seed:int ->
  unit ->
  report
(** Sample, check and (on failure) minimize genomes until [count]
    genomes are checked or [seconds] of wall clock have elapsed
    (whichever comes first; at least one genome is always checked;
    default [seconds] 10, no count). The sequence of genomes, and
    hence of any disagreements, is a function of [seed] alone. *)
