type t = { wires : int; levels : (int * int) array array }

let normalize_level pairs =
  let pairs =
    Array.map (fun (a, b) -> if a < b then (a, b) else (b, a)) pairs
  in
  Array.sort compare pairs;
  pairs

let validate_level ~wires pairs =
  let used = Array.make wires false in
  Array.iter
    (fun (a, b) ->
      if a < 0 || a >= wires || b < 0 || b >= wires then
        invalid_arg
          (Printf.sprintf "Genome.create: channel out of [0,%d)" wires);
      if a = b then invalid_arg "Genome.create: self-compare";
      List.iter
        (fun w ->
          if used.(w) then
            invalid_arg
              (Printf.sprintf "Genome.create: channel %d used twice in a level"
                 w)
          else used.(w) <- true)
        [ a; b ])
    pairs

let create ~wires levels =
  if wires < 2 then invalid_arg "Genome.create: wires must be >= 2";
  let levels = Array.map normalize_level levels in
  Array.iter (validate_level ~wires) levels;
  { wires; levels }

let wires g = g.wires
let shape g = Array.length g.levels
let size g = Array.fold_left (fun acc l -> acc + Array.length l) 0 g.levels
let equal a b = a.wires = b.wires && a.levels = b.levels

let to_network g =
  Network.of_gate_levels ~wires:g.wires
    (Array.to_list
       (Array.map
          (fun pairs ->
            Array.to_list
              (Array.map (fun (a, b) -> Gate.compare_up a b) pairs))
          g.levels))

(* Fisher-Yates on a scratch channel array; adjacent pairs of the
   shuffle are a uniform random perfect matching (modulo the leftover
   channel at odd wires). *)
let random_level rng ~wires ~density =
  let chan = Array.init wires (fun i -> i) in
  for i = wires - 1 downto 1 do
    let j = Xoshiro.int rng ~bound:(i + 1) in
    let tmp = chan.(i) in
    chan.(i) <- chan.(j);
    chan.(j) <- tmp
  done;
  let pairs = ref [] in
  let i = ref 0 in
  while !i + 1 < wires do
    if Xoshiro.float rng < density then
      pairs := (chan.(!i), chan.(!i + 1)) :: !pairs;
    i := !i + 2
  done;
  normalize_level (Array.of_list !pairs)

let random rng ~wires ~depth ?(density = 0.9) () =
  if wires < 2 then invalid_arg "Genome.random: wires must be >= 2";
  if depth < 0 then invalid_arg "Genome.random: depth must be >= 0";
  { wires; levels = Array.init depth (fun _ -> random_level rng ~wires ~density) }

let free_channels ~wires pairs =
  let used = Array.make wires false in
  Array.iter
    (fun (a, b) ->
      used.(a) <- true;
      used.(b) <- true)
    pairs;
  let free = ref [] in
  for w = wires - 1 downto 0 do
    if not used.(w) then free := w :: !free
  done;
  Array.of_list !free

let set_level g l pairs =
  let levels = Array.copy g.levels in
  levels.(l) <- normalize_level pairs;
  { g with levels }

(* pick uniformly among the levels satisfying [ok]; None if none do *)
let pick_level rng g ok =
  let eligible = ref [] in
  Array.iteri (fun l pairs -> if ok pairs then eligible := l :: !eligible)
    g.levels;
  match !eligible with
  | [] -> None
  | ls ->
      let ls = Array.of_list ls in
      Some ls.(Xoshiro.int rng ~bound:(Array.length ls))

let mutate_rewire rng g l =
  let pairs = Array.copy g.levels.(l) in
  let gi = Xoshiro.int rng ~bound:(Array.length pairs) in
  let a, b = pairs.(gi) in
  let keep, move = if Xoshiro.bool rng then (a, b) else (b, a) in
  (* candidate targets: the level's free channels plus the endpoint
     being abandoned (a pure re-orientation is not a move here — lo<hi
     normalization makes orientation immaterial) *)
  let free = free_channels ~wires:g.wires pairs in
  let cands = Array.of_list (List.filter (fun w -> w <> keep)
                               (move :: Array.to_list free)) in
  let w = cands.(Xoshiro.int rng ~bound:(Array.length cands)) in
  pairs.(gi) <- (keep, w);
  set_level g l pairs

let mutate_add rng g l =
  let pairs = g.levels.(l) in
  let free = free_channels ~wires:g.wires pairs in
  let k = Array.length free in
  let i = Xoshiro.int rng ~bound:k in
  let j = ref (Xoshiro.int rng ~bound:(k - 1)) in
  if !j >= i then incr j;
  set_level g l (Array.append pairs [| (free.(i), free.(!j)) |])

let mutate_remove rng g l =
  let pairs = g.levels.(l) in
  let gi = Xoshiro.int rng ~bound:(Array.length pairs) in
  set_level g l
    (Array.of_list
       (List.filteri (fun i _ -> i <> gi) (Array.to_list pairs)))

let mutate rng g =
  let has_gate pairs = Array.length pairs > 0 in
  let has_room pairs = Array.length (free_channels ~wires:g.wires pairs) >= 2 in
  (* the applicable operator set, decided before any draw so the draw
     count per op is stable *)
  let ops =
    (if Array.exists has_gate g.levels then [ `Rewire; `Remove ] else [])
    @ if Array.exists has_room g.levels then [ `Add ] else []
  in
  match ops with
  | [] -> g
  | ops -> (
      let ops = Array.of_list ops in
      match ops.(Xoshiro.int rng ~bound:(Array.length ops)) with
      | `Rewire -> (
          match pick_level rng g has_gate with
          | Some l -> mutate_rewire rng g l
          | None -> g)
      | `Add -> (
          match pick_level rng g has_room with
          | Some l -> mutate_add rng g l
          | None -> g)
      | `Remove -> (
          match pick_level rng g has_gate with
          | Some l -> mutate_remove rng g l
          | None -> g))

let crossover rng a b =
  if a.wires <> b.wires then invalid_arg "Genome.crossover: wires differ";
  if shape a <> shape b then invalid_arg "Genome.crossover: shapes differ";
  let d = shape a in
  if d < 2 then a
  else begin
    let k = 1 + Xoshiro.int rng ~bound:(d - 1) in
    { a with
      levels =
        Array.init d (fun l ->
            if l < k then a.levels.(l) else b.levels.(l));
    }
  end

let exact_max_wires = 12

let c_repairs = Metrics.counter "evolve.repairs"
let c_repaired_gates = Metrics.counter "evolve.repaired_gates"

let repair g =
  if g.wires > exact_max_wires then g
  else begin
    let r = Analysis.analyze (to_network g) in
    match r.Analysis.facts.Analysis.dead with
    | [] -> g
    | dead ->
        Metrics.incr c_repairs;
        Metrics.add c_repaired_gates (List.length dead);
        (* gate_ref.level is 1-based over network levels, which map
           index-for-index onto genome levels (to_network preserves
           empty ones); gate is the index into the level's pair array *)
        let levels =
          Array.mapi
            (fun l pairs ->
              Array.of_list
                (List.filteri
                   (fun gi _ ->
                     not
                       (List.exists
                          (fun (d : Analysis.gate_ref) ->
                            d.Analysis.level = l + 1 && d.Analysis.gate = gi)
                          dead))
                   (Array.to_list pairs)))
            g.levels
        in
        { g with levels }
  end

let repair_grow rng g =
  let repaired = repair g in
  if size repaired = size g then repaired
  else
    { repaired with
      levels =
        Array.mapi
          (fun l pairs ->
            if Array.length pairs >= Array.length g.levels.(l) then pairs
            else begin
              (* refill the channels freed by dead-gate removal with
                 fresh random comparators, one per lost gate at most *)
              let pairs = ref pairs in
              let lost = Array.length g.levels.(l) - Array.length !pairs in
              (try
                 for _ = 1 to lost do
                   let free = free_channels ~wires:g.wires !pairs in
                   let k = Array.length free in
                   if k < 2 then raise Exit;
                   let i = Xoshiro.int rng ~bound:k in
                   let j = ref (Xoshiro.int rng ~bound:(k - 1)) in
                   if !j >= i then incr j;
                   pairs :=
                     normalize_level
                       (Array.append !pairs [| (free.(i), free.(!j)) |])
                 done
               with Exit -> ());
              !pairs
            end)
          repaired.levels;
    }

let to_string g =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" g.wires (shape g));
  Array.iter
    (fun pairs ->
      Array.iteri
        (fun i (a, b) ->
          if i > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf (Printf.sprintf "%d,%d" a b))
        pairs;
      Buffer.add_char buf '\n')
    g.levels;
  Buffer.contents buf

let of_string s =
  match String.split_on_char '\n' s with
  | [] -> Error "empty genome"
  | header :: rest -> (
      match String.split_on_char ' ' (String.trim header) with
      | [ w; d ] -> (
          match (int_of_string_opt w, int_of_string_opt d) with
          | Some wires, Some depth when wires >= 2 && depth >= 0 -> (
              let rest = Array.of_list rest in
              if Array.length rest < depth then Error "truncated genome"
              else
                let parse_pair p =
                  match String.split_on_char ',' p with
                  | [ a; b ] -> (
                      match (int_of_string_opt a, int_of_string_opt b) with
                      | Some a, Some b -> (a, b)
                      | _ -> failwith ("bad pair " ^ p))
                  | _ -> failwith ("bad pair " ^ p)
                in
                let parse_level line =
                  let line = String.trim line in
                  if line = "" then [||]
                  else
                    Array.of_list
                      (List.map parse_pair (String.split_on_char ' ' line))
                in
                match
                  create ~wires (Array.init depth (fun l -> parse_level rest.(l)))
                with
                | g -> Ok g
                | exception (Failure e | Invalid_argument e) -> Error e)
          | _ -> Error ("bad genome header: " ^ header))
      | _ -> Error ("bad genome header: " ^ header))
