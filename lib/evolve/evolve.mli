(** The generational driver: population-scale evolutionary search for
    sorting networks of a fixed depth shape.

    Plain generational GA, tuned for determinism rather than novelty:
    tournament selection with elitism, single-point level crossover,
    point mutation, and the analyzer-guided repair mutation
    ({!Genome.repair_grow}). Every random draw comes from a stream
    derived purely from [(seed, generation, slot)], so the evolved
    trajectory is a function of the seed alone — independent of
    [domains] (parallelism only touches the fitness fan-out, which is
    order-preserving) and of interruptions: a run resumed from a
    checkpoint finishes with the byte-identical final population of a
    never-interrupted run ({!population_digest} makes that testable
    from the CLI).

    Crash safety rides the PR-4 envelope: at every generation boundary
    the population is a consistent snapshot; [checkpoint:(path,
    interval)] publishes it through {!Checkpoint.write} on the given
    cadence, an interruption (cancel token or the ["kill-gen"] fault)
    flushes the newest boundary before returning, and [resume] reads
    it back, rejecting snapshots from an incompatible configuration.

    The run stops at the first generation whose best genome reaches
    {!Fitness.max_fitness} (a perfect sorter — for a depth shape set
    to the Bundala–Závodný optimum, a rediscovered depth-optimal
    network), or after [gens] generations.

    Observability: ["evolve.generations"] counts completed
    generations, ["evolve.evals"] (via {!Fitness}) genome
    evaluations; a sink receives one ["evolve/gen"] span per
    generation carrying the running best. *)

type config = {
  wires : int;
  depth : int;  (** fixed genome shape (levels) *)
  pop : int;  (** population size, >= 2 *)
  gens : int;  (** generation cap, >= 1 *)
  seed : int;
  tournament : int;  (** tournament size, >= 1 *)
  elite : int;  (** genomes copied unchanged, in [0, pop) *)
  crossover_prob : float;
  repair_prob : float;
      (** probability a child gets {!Genome.repair_grow} instead of a
          blind {!Genome.mutate} *)
  density : float;  (** initial-population comparator density *)
  domains : int;  (** fitness fan-out *)
}

val default_config : wires:int -> depth:int -> config
(** pop 256, gens 200, seed 1, tournament 3, elite 2, crossover 0.6,
    repair 0.25, density 0.9, domains 1. *)

type result = {
  best : Genome.t;
  best_fitness : int;
  found_at : int option;
      (** first generation (0-based) whose best is a perfect sorter *)
  generations : int;  (** generations fully evaluated *)
  population : Genome.t array;  (** the final population, in slot order *)
  interrupted : bool;
}

val run :
  ?sink:Sink.t ->
  ?cancel:Cancel.t ->
  ?checkpoint:string * float ->
  ?resume:bool ->
  config ->
  result
(** [resume] (default false) restarts from the snapshot at the
    checkpoint path; a missing, damaged or incompatible snapshot
    degrades to a fresh run with a [stderr] warning.
    @raise Invalid_argument on a nonsensical config. *)

val population_digest : Genome.t array -> string
(** CRC-32 (hex) over the canonical serialization of every genome in
    slot order — equal digests mean byte-identical populations. *)

val known_optimal_depth : int -> int option
(** The proved minimal sorting-network depth for [2 <= n <= 16]
    (Knuth 5.3.4 for small [n]; Bundala–Závodný, LATA 2014, for
    [n <= 16]); [None] outside that range. The fuzzer's oracle and the
    CLI's "matches the known optimum" report. *)
