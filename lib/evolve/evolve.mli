(** The generational driver: population-scale evolutionary search for
    sorting networks of a fixed depth shape.

    Plain generational GA, tuned for determinism rather than novelty:
    tournament selection with elitism, single-point level crossover,
    point mutation, and the analyzer-guided repair mutation
    ({!Genome.repair_grow}). Every random draw comes from a stream
    derived purely from [(seed, generation, slot)], so the evolved
    trajectory is a function of the seed alone — independent of
    [domains] (parallelism only touches the fitness fan-out, which is
    order-preserving) and of interruptions: a run resumed from a
    checkpoint finishes with the byte-identical final population of a
    never-interrupted run ({!population_digest} makes that testable
    from the CLI).

    Crash safety rides the PR-4 envelope: at every generation boundary
    the population is a consistent snapshot; [checkpoint:(path,
    interval)] publishes it through {!Checkpoint.write} on the given
    cadence, an interruption (cancel token or the ["kill-gen"] fault)
    flushes the newest boundary before returning, and [resume] reads
    it back, rejecting snapshots from an incompatible configuration.

    The run stops at the first generation whose best genome reaches
    {!Fitness.max_fitness} (a perfect sorter — for a depth shape set
    to the Bundala–Závodný optimum, a rediscovered depth-optimal
    network), or after [gens] generations.

    Observability: ["evolve.generations"] counts completed
    generations, ["evolve.evals"] (via {!Fitness}) genome
    evaluations; a sink receives one ["evolve/gen"] span per
    generation carrying the running best. *)

type config = {
  wires : int;
  depth : int;  (** fixed genome shape (levels) *)
  pop : int;  (** population size, >= 2 *)
  gens : int;  (** generation cap, >= 1 *)
  seed : int;
  tournament : int;  (** tournament size, >= 1 *)
  elite : int;  (** genomes copied unchanged, in [0, pop) *)
  crossover_prob : float;
  repair_prob : float;
      (** probability a child gets {!Genome.repair_grow} instead of a
          blind {!Genome.mutate} *)
  density : float;  (** initial-population comparator density *)
  domains : int;  (** fitness fan-out *)
}

val default_config : wires:int -> depth:int -> config
(** pop 256, gens 200, seed 1, tournament 3, elite 2, crossover 0.6,
    repair 0.25, density 0.9, domains 1. *)

type result = {
  best : Genome.t;
  best_fitness : int;
  found_at : int option;
      (** first generation (0-based) whose best is a perfect sorter *)
  generations : int;  (** generations fully evaluated *)
  population : Genome.t array;  (** the final population, in slot order *)
  interrupted : bool;
}

val run :
  ?sink:Sink.t ->
  ?cancel:Cancel.t ->
  ?checkpoint:string * float ->
  ?resume:bool ->
  config ->
  result
(** [resume] (default false) restarts from the snapshot at the
    checkpoint path; a missing, damaged or incompatible snapshot
    degrades to a fresh run with a [stderr] warning.
    @raise Invalid_argument on a nonsensical config. *)

val population_digest : Genome.t array -> string
(** CRC-32 (hex) over the canonical serialization of every genome in
    slot order — equal digests mean byte-identical populations. *)

(** {1 Segments — the island-model building block}

    {!Shard_islands} runs each island's epoch as one {!run_segment}
    call inside a forked worker. Because every draw is keyed by the
    {e absolute} generation index, running [gens] generations as one
    segment or as chained epochs (threading the population through)
    produces byte-identical populations — and a retried worker
    (at-least-once delivery) recomputes exactly the same segment. *)

val better : int * int * int -> int * int * int -> bool
(** [better (f1, s1, i1) (f2, s2, i2)] — the driver's deterministic
    total order on (fitness, genome size, slot): fitter first, then
    fewer comparators, then the lower slot/island index. Exposed so
    the island merge ranks champions with the same rule. *)

val initial_population : config -> Genome.t array
(** The deterministic generation-0 population {!run} starts from when
    not resuming (one splittable stream per slot off the seed).
    @raise Invalid_argument on a nonsensical config. *)

type segment = {
  seg_population : Genome.t array;
      (** after the segment: bred from the last evaluated generation,
          or the evaluated population itself if it contains a perfect
          sorter *)
  seg_found_at : int option;  (** absolute generation of a perfect sorter *)
  seg_best_fitness : int;
  seg_best_size : int;
  seg_best : Genome.t;  (** champion over the segment's generations *)
  seg_generations : int;  (** generations evaluated ([<= gens] on a find) *)
}

val run_segment :
  ?sink:Sink.t -> config -> start_gen:int -> gens:int -> Genome.t array -> segment
(** [run_segment cfg ~start_gen ~gens pop] evaluates and breeds
    generations [start_gen .. start_gen + gens - 1] from [pop] —
    {!run}'s inner loop with no checkpointing, cancellation or fault
    hooks (the caller owns those), stopping early at a perfect sorter
    exactly as {!run} does.
    @raise Invalid_argument on a nonsensical config, [gens < 1],
    [start_gen < 0], or a population sized other than [cfg.pop]. *)

val population_payload : Genome.t array -> string
(** The canonical text serialization of a population in slot order —
    the checkpoint payload format, reused verbatim as the island
    migration / work-unit format. *)

val parse_population :
  config -> string -> (Genome.t array, string) Stdlib.result
(** Inverse of {!population_payload}, validating genome count and
    shape against [config]. *)

val known_optimal_depth : int -> int option
(** The proved minimal sorting-network depth for [2 <= n <= 16]
    (Knuth 5.3.4 for small [n]; Bundala–Závodný, LATA 2014, for
    [n <= 16]); [None] outside that range. The fuzzer's oracle and the
    CLI's "matches the known optimum" report. *)
