(** Comparator networks as fixed-shape genomes.

    A genome on [wires] channels is a fixed number of levels (the depth
    shape the evolution searches within); each level is a set of
    comparator pairs on pairwise disjoint channels, kept sorted by
    lower channel so every genome has exactly one representation — the
    serialized form is canonical, populations can be digested for
    byte-identical resume checks, and operators that rebuild a level
    cannot smuggle in order-dependent behaviour.

    All stochastic operators draw from an explicit {!Xoshiro.t}, so a
    population evolved from a seed is reproducible bit for bit; the
    repair operator is the analyzer-guided one of ROADMAP item 4 —
    dead comparators (proved by {!Analysis} to never exchange on any
    reachable 0-1 input) are removed rather than blindly mutated. *)

type t = private {
  wires : int;
  levels : (int * int) array array;
      (** [levels.(l)] is level [l]'s comparator pairs [(lo, hi)],
          [lo < hi], pairwise channel-disjoint, sorted by [lo] *)
}

val create : wires:int -> (int * int) array array -> t
(** Validate and normalize (orient pairs low-high, sort each level).
    @raise Invalid_argument on a channel out of [0, wires), a
    self-compare, or a channel used twice in one level. *)

val wires : t -> int

val shape : t -> int
(** Number of levels, including comparator-free ones — the fixed depth
    shape. [Network.depth] of {!to_network} can be smaller. *)

val size : t -> int
(** Total comparator count. *)

val equal : t -> t -> bool

val to_network : t -> Network.t
(** The circuit-model network: level [l]'s pairs as {!Gate.compare_up}
    gates, empty levels preserved (so {!Analysis} gate references map
    back to genome slots index-for-index). *)

val random : Xoshiro.t -> wires:int -> depth:int -> ?density:float -> unit -> t
(** [random rng ~wires ~depth ()] draws each level as a random
    matching: channels are shuffled, adjacent pairs kept with
    probability [density] (default [0.9]).
    @raise Invalid_argument if [wires < 2] or [depth < 0]. *)

(** {1 Variation operators}

    Every operator returns a genome of the same wires and shape, and
    preserves validity (tested by QCheck properties). *)

val mutate : Xoshiro.t -> t -> t
(** One random point mutation, drawn uniformly from the applicable
    subset of: {e rewire} (move one endpoint of one comparator to a
    free channel of its level), {e add} (a comparator on two free
    channels of one level), {e remove} (drop one comparator). On the
    degenerate genome where nothing applies, the identity. *)

val crossover : Xoshiro.t -> t -> t -> t
(** Single-point level crossover: levels [0, k) from the first parent,
    [k, depth) from the second, [k] uniform in [1, depth).
    @raise Invalid_argument if wires or shapes differ. *)

val repair : t -> t
(** Analyzer-guided repair: remove every comparator {!Analysis} proves
    dead (never exchanges on any reachable 0-1 input — removal is
    extensionally sound). Since removing a dead comparator changes no
    reachable value anywhere, repair never {e introduces} a dead
    comparator: the repaired genome analyzes dead-free (the QCheck
    property). Genomes wider than the exact-domain cutoff (12) are
    returned unchanged. *)

val repair_grow : Xoshiro.t -> t -> t
(** {!repair}, then refill: each level that lost comparators gets
    fresh random ones on its free channels — the repair {e mutation}
    used by the evolutionary driver (replace provably useless gates
    with new genetic material instead of blind point mutation). *)

(** {1 Serialization}

    Canonical text, one genome per call: first line [wires depth],
    then one line per level of space-separated [lo,hi] pairs (empty
    line for an empty level). Stable across versions — checkpoint
    payloads and fuzzer repro reports are built from it. *)

val to_string : t -> string

val of_string : string -> (t, string) result
