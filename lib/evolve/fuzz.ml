type disagreement = {
  index : int;
  kind : string;
  detail : string;
  genome : Genome.t;
  original : Genome.t;
}

type report = {
  checked : int;
  disagreements : disagreement list;
  elapsed : float;
}

let c_networks = Metrics.counter "fuzz.networks"
let c_disagreements = Metrics.counter "fuzz.disagreements"

let fail kind fmt = Printf.ksprintf (fun detail -> Error (kind, detail)) fmt

let ( let* ) = Result.bind

(* All 2^n outputs of the compiled network, via the shared lane-packed
   fold — used to compare whole truth tables bit for bit. *)
let truth_table c =
  let n = Compiled.wires c in
  let masks = Array.init (1 lsl n) (fun t -> t) in
  let out = Array.make (1 lsl n) 0 in
  Bitslice.fold_masks c masks ~init:() ~f:(fun () ~off chunk ->
      Array.blit chunk 0 out off (Array.length chunk));
  out

let scalar_unsorted_count nw =
  let n = Network.wires nw in
  let count = ref 0 in
  for t = 0 to (1 lsl n) - 1 do
    let input = Array.init n (fun w -> (t lsr w) land 1) in
    if not (Sortedness.is_sorted (Network.eval nw input)) then incr count
  done;
  !count

let check_engine_vs_interpreter nw c =
  let n = Network.wires nw in
  let engine = Bitslice.count_unsorted c in
  let scalar = scalar_unsorted_count nw in
  let* () =
    if engine <> scalar then
      fail "engine-vs-interpreter"
        "bit-sliced unsorted count %d, Network.eval count %d" engine scalar
    else Ok ()
  in
  let* () =
    let sorted = Bitslice.count_sorted_range c ~lo:0 ~hi:(1 lsl n) in
    if sorted + engine <> 1 lsl n then
      fail "engine-vs-engine" "count_sorted_range %d + unsorted %d <> 2^%d"
        sorted engine n
    else Ok ()
  in
  match Bitslice.find_unsorted c with
  | None ->
      if engine = 0 then Ok ()
      else fail "engine-vs-engine" "no witness but unsorted count %d" engine
  | Some w ->
      if engine = 0 then
        fail "engine-vs-engine" "witness %d but unsorted count 0" w
      else
        let out = (Bitslice.eval_masks c [| w |]).(0) in
        if Bitslice.mask_sorted ~wires:n out then
          fail "engine-vs-engine" "witness %d evaluates sorted (out %d)" w out
        else Ok ()

let equal_tables kind nw nw' =
  let t = truth_table (Compiled.of_network nw) in
  let t' = truth_table (Compiled.of_network nw') in
  let bad = ref None in
  Array.iteri
    (fun i o -> if !bad = None && o <> t'.(i) then bad := Some i)
    t;
  match !bad with
  | None -> Ok ()
  | Some i ->
      fail kind "0-1 behaviour differs on input %d (%d vs %d)" i t.(i) t'.(i)

let check_analyzer nw c =
  let r = Analysis.analyze nw in
  let facts = r.Analysis.facts in
  let sorts = Bitslice.is_sorting_network c in
  let* () =
    match facts.Analysis.sortedness with
    | Analysis.Sorting_proved ->
        if sorts then Ok ()
        else fail "analyzer-vs-engine" "analyzer proves sorting, engine refutes"
    | Analysis.Sorting_refuted m ->
        (* [m] is a reachable unsorted *output* mask, not an input:
           it must really be unsorted and really have a preimage. *)
        if sorts then
          fail "analyzer-vs-engine"
            "analyzer refutes with mask %d, engine verifies" m
        else if Bitslice.mask_sorted ~wires:(Network.wires nw) m then
          fail "analyzer-vs-engine" "analyzer's refutation mask %d is sorted" m
        else if not (Array.exists (fun o -> o = m) (truth_table c)) then
          fail "analyzer-vs-engine"
            "analyzer's refutation mask %d is not a reachable output" m
        else Ok ()
    | Analysis.Sorted_by_bounds | Analysis.Unknown ->
        fail "analyzer-not-exact"
          "exact domain expected at %d wires" (Network.wires nw)
  in
  (* dead/redundant classifications are extensional claims; hold the
     analyzer to them bit for bit *)
  let* () =
    equal_tables "analyzer-dead-removal" nw (Analysis.remove_dead nw facts)
  in
  equal_tables "analyzer-redundant-flip" nw (Analysis.flip_redundant nw facts)

let check_adversary nw c =
  let res = Naive.run nw in
  match Certificate.of_pattern res.Naive.final_pattern with
  | None -> Ok ()
  | Some cert -> (
      match Certificate.validate nw cert with
      | Error e ->
          fail "adversary-vs-certificate"
            "naive adversary produced an invalid certificate: %s" e
      | Ok () ->
          if Bitslice.is_sorting_network c then
            fail "adversary-vs-engine"
              "valid fooling pair (wires %d,%d) on an engine-verified sorter"
              cert.Certificate.wire0 cert.Certificate.wire1
          else Ok ())

(* Fifth oracle: the certifying emitters against the independent
   checker. The analyzer's sortedness and dead-gate certificates must
   (a) agree in kind with the engine's verdict, (b) survive a
   print/parse round-trip of the portable text format byte for byte,
   and (c) be accepted by the checker — which shares no code with the
   emitters, so any disagreement here is a real bug on one side. *)
let check_certificates nw c =
  let sorts = Bitslice.is_sorting_network c in
  let* cert =
    match Analysis_cert.sortedness nw with
    | Ok cert -> Ok cert
    | Error e -> fail "cert-emit" "no sortedness certificate: %s" e
  in
  let* () =
    match (cert, sorts) with
    | Cert.Sortedness _, true | Cert.Refutation _, false -> Ok ()
    | Cert.Sortedness _, false ->
        fail "cert-vs-engine"
          "sortedness certificate for an engine-refuted network"
    | Cert.Refutation _, true ->
        fail "cert-vs-engine"
          "refutation certificate for an engine-verified sorter"
    | _, _ ->
        fail "cert-emit" "unexpected certificate kind %s" (Cert.kind_name cert)
  in
  let* dead =
    match Analysis_cert.dead_gates nw with
    | Ok d -> Ok (Option.to_list d)
    | Error e -> fail "cert-emit" "no dead-gate certificate: %s" e
  in
  let certs = cert :: dead in
  let text = String.concat "\n" (List.map Cert.to_string certs) in
  match Cert.parse text with
  | Error e ->
      fail "cert-roundtrip" "emitted text rejected: %s %s: %s" e.Cert.code
        e.Cert.where e.Cert.reason
  | Ok certs' -> (
      let* () =
        if text <> String.concat "\n" (List.map Cert.to_string certs') then
          fail "cert-roundtrip" "print/parse/print is not the identity"
        else Ok ()
      in
      match Cert.check_all certs' with
      | Ok () -> Ok ()
      | Error e ->
          fail "cert-vs-checker"
            "checker rejects an emitted certificate: %s %s: %s" e.Cert.code
            e.Cert.where e.Cert.reason)

let check_known_optima nw c =
  match Evolve.known_optimal_depth (Network.wires nw) with
  | None -> Ok ()
  | Some opt ->
      if Network.depth nw < opt && Bitslice.is_sorting_network c then
        fail "engine-vs-known-optima"
          "engine verifies a depth-%d sorter on %d wires (proved optimum %d)"
          (Network.depth nw) (Network.wires nw) opt
      else Ok ()

let check_genome g =
  if Genome.wires g > 12 then invalid_arg "Fuzz.check_genome: wires > 12";
  let nw = Genome.to_network g in
  let c = Compiled.of_network nw in
  let* () = check_engine_vs_interpreter nw c in
  let* () = check_analyzer nw c in
  let* () = check_adversary nw c in
  let* () = check_certificates nw c in
  check_known_optima nw c

let sample_genome rng =
  let wires = 2 + Xoshiro.int rng ~bound:7 in
  let depth = 1 + Xoshiro.int rng ~bound:8 in
  let density = 0.3 +. (0.7 *. Xoshiro.float rng) in
  Genome.random rng ~wires ~depth ~density ()

(* Stream [index] is the base stream jumped [index] times: 2^128
   outputs apart, so replaying one index never regenerates the
   others. *)
let genome_at ~seed ~index =
  let base = Xoshiro.of_seed seed in
  for _ = 1 to index do
    Xoshiro.jump base
  done;
  sample_genome base

let minimize g ~fails =
  let drop g l gi =
    Genome.create ~wires:(Genome.wires g)
      (Array.mapi
         (fun li pairs ->
           if li <> l then pairs
           else
             Array.of_list
               (List.filteri (fun i _ -> i <> gi) (Array.to_list pairs)))
         g.Genome.levels)
  in
  let rec shrink g =
    let smaller = ref None in
    Array.iteri
      (fun l pairs ->
        Array.iteri
          (fun gi _ ->
            if !smaller = None then begin
              let cand = drop g l gi in
              if fails cand then smaller := Some cand
            end)
          pairs)
      g.Genome.levels;
    match !smaller with Some g' -> shrink g' | None -> g
  in
  if not (fails g) then g else shrink g

let run ?(sink = Sink.null) ?cancel ?(seconds = 10.) ?count ~seed () =
  Span.run ~sink ~name:"fuzz" (fun sp ->
      let t0 = Clock.wall () in
      let deadline = t0 +. seconds in
      let cancelled () =
        match cancel with None -> false | Some c -> Cancel.cancelled c
      in
      let stream = Xoshiro.of_seed seed in
      let checked = ref 0 in
      let disagreements = ref [] in
      let continue () =
        (match count with Some k -> !checked < k | None -> true)
        && (!checked = 0 || Clock.wall () < deadline)
        && not (cancelled ())
      in
      while continue () do
        let index = !checked in
        let rng = Xoshiro.copy stream in
        Xoshiro.jump stream;
        let g = sample_genome rng in
        Metrics.incr c_networks;
        (match check_genome g with
        | Ok () -> ()
        | Error (kind, detail) ->
            Metrics.incr c_disagreements;
            let fails cand =
              match check_genome cand with
              | Ok () -> false
              | Error (k, _) -> k = kind
            in
            let minimized = minimize g ~fails in
            disagreements :=
              { index; kind; detail; genome = minimized; original = g }
              :: !disagreements);
        incr checked
      done;
      let elapsed = Clock.wall () -. t0 in
      Span.add sp "checked" (Sink.Int !checked);
      Span.add sp "disagreements" (Sink.Int (List.length !disagreements));
      { checked = !checked;
        disagreements = List.rev !disagreements;
        elapsed;
      })
