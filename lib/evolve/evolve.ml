type config = {
  wires : int;
  depth : int;
  pop : int;
  gens : int;
  seed : int;
  tournament : int;
  elite : int;
  crossover_prob : float;
  repair_prob : float;
  density : float;
  domains : int;
}

let default_config ~wires ~depth =
  { wires;
    depth;
    pop = 256;
    gens = 200;
    seed = 1;
    tournament = 3;
    elite = 2;
    crossover_prob = 0.6;
    repair_prob = 0.25;
    density = 0.9;
    domains = 1;
  }

type result = {
  best : Genome.t;
  best_fitness : int;
  found_at : int option;
  generations : int;
  population : Genome.t array;
  interrupted : bool;
}

let c_generations = Metrics.counter "evolve.generations"
let c_ckpt_failures = Metrics.counter "checkpoint.failures"
let c_resumes = Metrics.counter "checkpoint.resumes"

(* Proved minimal depths for n = 2..16: Knuth 5.3.4 exercise 51 for
   n <= 10, Bundala & Zavodny (LATA 2014) for n <= 16. *)
let optimal_depths =
  [| 1; 3; 3; 5; 5; 6; 6; 7; 7; 8; 8; 9; 9; 9; 9 |]

let known_optimal_depth n =
  if n >= 2 && n <= 16 then Some optimal_depths.(n - 2) else None

let population_digest pop =
  let crc =
    Array.fold_left
      (fun crc g ->
        let s = Genome.to_string g in
        Crc32.update crc s 0 (String.length s))
      0 pop
  in
  Printf.sprintf "%08x" crc

(* Every stochastic decision of generation [gen] breeding slot [slot]
   draws from this stream and nothing else, so the trajectory is a
   pure function of the seed — parallelism, interruption and resume
   cannot perturb it. *)
let rng_at ~seed ~gen ~slot =
  let z =
    Int64.add (Int64.of_int seed)
      (Int64.add
         (Int64.mul (Int64.of_int (gen + 1)) 0x9E3779B97F4A7C15L)
         (Int64.mul (Int64.of_int (slot + 1)) 0xBF58476D1CE4E5B9L))
  in
  Xoshiro.of_splitmix (Splitmix.create z)

let validate cfg =
  if cfg.wires < 2 || cfg.wires > 16 then
    invalid_arg "Evolve.run: wires must be in [2,16]";
  if cfg.depth < 1 then invalid_arg "Evolve.run: depth must be >= 1";
  if cfg.pop < 2 then invalid_arg "Evolve.run: pop must be >= 2";
  if cfg.gens < 1 then invalid_arg "Evolve.run: gens must be >= 1";
  if cfg.tournament < 1 then invalid_arg "Evolve.run: tournament must be >= 1";
  if cfg.elite < 0 || cfg.elite >= cfg.pop then
    invalid_arg "Evolve.run: elite must be in [0,pop)";
  if cfg.domains < 1 then invalid_arg "Evolve.run: domains must be >= 1"

(* --- checkpoint / resume --- *)

let checkpoint_kind = "snlb-evolve-1"

let snapshot_meta cfg ~next_gen =
  [ ("n", string_of_int cfg.wires);
    ("depth", string_of_int cfg.depth);
    ("pop", string_of_int cfg.pop);
    ("gens", string_of_int cfg.gens);
    ("seed", string_of_int cfg.seed);
    ("generation", string_of_int next_gen) ]

let snapshot_payload pop =
  String.concat "" (Array.to_list (Array.map Genome.to_string pop))

(* Genomes serialize to exactly depth + 1 lines each, so the payload
   splits back by line count alone. *)
let parse_payload cfg payload =
  let lines = String.split_on_char '\n' payload in
  let per = cfg.depth + 1 in
  let rec take k acc rest =
    if k = 0 then Ok (List.rev acc, rest)
    else
      match rest with
      | [] -> Error "truncated population payload"
      | l :: rest -> take (k - 1) (l :: acc) rest
  in
  let rec go slot acc rest =
    if slot = cfg.pop then Ok (Array.of_list (List.rev acc))
    else
      match take per [] rest with
      | Error e -> Error e
      | Ok (ls, rest) -> (
          match Genome.of_string (String.concat "\n" ls ^ "\n") with
          | Ok g when Genome.wires g = cfg.wires && Genome.shape g = cfg.depth
            ->
              go (slot + 1) (g :: acc) rest
          | Ok _ -> Error "genome shape mismatch in payload"
          | Error e -> Error e)
  in
  go 0 [] lines

let load_resume cfg ~path =
  match Checkpoint.load ~path with
  | Error e -> Error e
  | Ok (ck, provenance) -> (
      (match provenance with
      | `Primary -> ()
      | `Backup reason ->
          Printf.eprintf "snlb: falling back to checkpoint backup %s.bak (%s)\n%!"
            path reason);
      if ck.Checkpoint.kind <> checkpoint_kind then
        Error
          (Printf.sprintf "checkpoint %s holds a %S snapshot, not an evolution"
             path ck.Checkpoint.kind)
      else
        let meta k = List.assoc_opt k ck.Checkpoint.meta in
        let want k v =
          match meta k with
          | Some m when m = string_of_int v -> Ok ()
          | Some m -> Error (Printf.sprintf "checkpoint %s=%s, this run %d" k m v)
          | None -> Error (Printf.sprintf "checkpoint lacks %s" k)
        in
        let ( let* ) = Result.bind in
        let* () = want "n" cfg.wires in
        let* () = want "depth" cfg.depth in
        let* () = want "pop" cfg.pop in
        let* () = want "gens" cfg.gens in
        let* () = want "seed" cfg.seed in
        let* gen =
          match Option.bind (meta "generation") int_of_string_opt with
          | Some g when g >= 0 -> Ok g
          | _ -> Error "checkpoint lacks a valid generation"
        in
        let* pop = parse_payload cfg ck.Checkpoint.payload in
        Ok (gen, pop))

(* --- selection --- *)

(* Deterministic total order on (fitness, genome size, slot): fitter
   first, then fewer comparators, then the lower slot. *)
let better (f1, s1, i1) (f2, s2, i2) =
  f1 > f2 || (f1 = f2 && (s1 < s2 || (s1 = s2 && i1 < i2)))

let tournament_pick rng cfg fits sizes =
  let best = ref (Xoshiro.int rng ~bound:cfg.pop) in
  for _ = 2 to cfg.tournament do
    let c = Xoshiro.int rng ~bound:cfg.pop in
    if
      better (fits.(c), sizes.(c), c) (fits.(!best), sizes.(!best), !best)
    then best := c
  done;
  !best

let initial_population cfg =
  validate cfg;
  (* one splittable stream per slot *)
  let base = Splitmix.create (Int64.of_int cfg.seed) in
  Array.init cfg.pop (fun _ ->
      let rng = Xoshiro.of_splitmix (Splitmix.split base) in
      Genome.random rng ~wires:cfg.wires ~depth:cfg.depth ~density:cfg.density
        ())

(* One generation: evaluate, pick the generation's champion, and
   (unless it already sorts) breed the successor population. Shared by
   [run] and [run_segment], so the single-process driver and the
   island-model workers make byte-identical decisions — every draw
   comes from [rng_at] keyed by the {e absolute} generation index. *)
let generation ~sink cfg ~max_fit ~gen pop =
  Span.run ~sink ~name:"evolve/gen" (fun sp ->
      let fits = Fitness.population ~domains:cfg.domains pop in
      let sizes = Array.map Genome.size pop in
      let best_slot = ref 0 in
      for i = 1 to cfg.pop - 1 do
        if
          better (fits.(i), sizes.(i), i)
            (fits.(!best_slot), sizes.(!best_slot), !best_slot)
        then best_slot := i
      done;
      let bf = fits.(!best_slot) in
      Metrics.incr c_generations;
      Span.add sp "generation" (Sink.Int gen);
      Span.add sp "best_fitness" (Sink.Int bf);
      Span.add sp "best_size" (Sink.Int sizes.(!best_slot));
      let next =
        if bf = max_fit then None
        else
          (* breed the next generation: elite copies, then tournament
             children, each slot on its own stream *)
          let order = Array.init cfg.pop (fun i -> i) in
          Array.sort
            (fun i j ->
              if better (fits.(i), sizes.(i), i) (fits.(j), sizes.(j), j)
              then -1
              else 1)
            order;
          Some
            (Array.init cfg.pop (fun slot ->
                 if slot < cfg.elite then pop.(order.(slot))
                 else begin
                   let rng = rng_at ~seed:cfg.seed ~gen ~slot in
                   let p1 = tournament_pick rng cfg fits sizes in
                   let child =
                     if Xoshiro.float rng < cfg.crossover_prob then begin
                       let p2 = tournament_pick rng cfg fits sizes in
                       Genome.crossover rng pop.(p1) pop.(p2)
                     end
                     else pop.(p1)
                   in
                   if Xoshiro.float rng < cfg.repair_prob then
                     Genome.repair_grow rng child
                   else Genome.mutate rng child
                 end))
      in
      (bf, sizes.(!best_slot), pop.(!best_slot), next))

type segment = {
  seg_population : Genome.t array;
  seg_found_at : int option;
  seg_best_fitness : int;
  seg_best_size : int;
  seg_best : Genome.t;
  seg_generations : int;
}

let run_segment ?(sink = Sink.null) cfg ~start_gen ~gens population =
  validate cfg;
  if gens < 1 then invalid_arg "Evolve.run_segment: gens must be >= 1";
  if start_gen < 0 then invalid_arg "Evolve.run_segment: start_gen must be >= 0";
  if Array.length population <> cfg.pop then
    invalid_arg "Evolve.run_segment: population size differs from cfg.pop";
  let max_fit = Fitness.max_fitness ~wires:cfg.wires in
  let pop = ref population in
  let best = ref None in
  let found_at = ref None in
  let evaluated = ref 0 in
  let g = ref start_gen in
  while !g < start_gen + gens && !found_at = None do
    let bf, bsize, bgenome, next = generation ~sink cfg ~max_fit ~gen:!g !pop in
    (match !best with
    | Some (f, s, _) when not (better (bf, bsize, 0) (f, s, 0)) -> ()
    | _ -> best := Some (bf, bsize, bgenome));
    incr evaluated;
    (match next with
    | None -> found_at := Some !g
    | Some next -> pop := next);
    incr g
  done;
  let best_fitness, best_size, best =
    match !best with Some b -> b | None -> assert false (* gens >= 1 *)
  in
  {
    seg_population = !pop;
    seg_found_at = !found_at;
    seg_best_fitness = best_fitness;
    seg_best_size = best_size;
    seg_best = best;
    seg_generations = !evaluated;
  }

let population_payload = snapshot_payload
let parse_population = parse_payload

let run ?(sink = Sink.null) ?cancel ?checkpoint ?(resume = false) cfg =
  validate cfg;
  let max_fit = Fitness.max_fitness ~wires:cfg.wires in
  let cancelled () =
    match cancel with None -> false | Some c -> Cancel.cancelled c
  in
  let start =
    if not resume then None
    else
      match checkpoint with
      | None -> None
      | Some (path, _) -> (
          match load_resume cfg ~path with
          | Ok (gen, pop) ->
              Metrics.incr c_resumes;
              Printf.eprintf
                "snlb: resuming evolution n=%d depth=%d pop=%d seed=%d at generation %d\n%!"
                cfg.wires cfg.depth cfg.pop cfg.seed gen;
              Some (gen, pop)
          | Error e ->
              Printf.eprintf "snlb: cannot resume (%s); starting fresh\n%!" e;
              None)
  in
  let start_gen, population =
    match start with
    | Some (gen, pop) -> (gen, pop)
    | None -> (0, initial_population cfg)
  in
  (* checkpoint cadence: remember the newest boundary, write when
     [interval] seconds have passed since the last write (or the start
     of the run); an interruption flushes the pending boundary. *)
  let last_write = ref (Clock.wall ()) in
  let pending = ref None in
  let note_boundary ~next_gen pop =
    if checkpoint <> None then pending := Some (next_gen, pop)
  in
  let flush () =
    match (checkpoint, !pending) with
    | Some (path, _), Some (next_gen, pop) ->
        pending := None;
        last_write := Clock.wall ();
        (match
           Checkpoint.write ~path
             { Checkpoint.kind = checkpoint_kind;
               meta = snapshot_meta cfg ~next_gen;
               payload = snapshot_payload pop;
             }
         with
        | Ok () -> ()
        | Error e ->
            Metrics.incr c_ckpt_failures;
            Printf.eprintf
              "snlb: checkpoint write failed (%s); evolution continues\n%!" e)
    | _ -> ()
    | exception _ -> ()
  in
  let flush_if_due () =
    match checkpoint with
    | Some (_, interval) when !pending <> None ->
        if Clock.wall () -. !last_write >= interval then flush ()
    | _ -> ()
  in
  let population = ref population in
  let best = ref None in
  let found_at = ref None in
  let generations = ref start_gen in
  let interrupted = ref false in
  (try
     let gen = ref start_gen in
     while !gen < cfg.gens && !found_at = None && not !interrupted do
       let g = !gen in
       let pop = !population in
       let bf, bsize, bgenome, next = generation ~sink cfg ~max_fit ~gen:g pop in
       (match !best with
       | Some (f, s, _) when not (better (bf, bsize, 0) (f, s, 0)) -> ()
       | _ -> best := Some (bf, bsize, bgenome));
       generations := g + 1;
       (match next with
       | None -> found_at := Some g
       | Some next ->
           population := next;
           (* generation boundary: the next generation's start state
              is consistent — snapshot it on the cadence *)
           note_boundary ~next_gen:(g + 1) next;
           flush_if_due ();
           if cancelled () || Fault.fire "kill-gen" then interrupted := true);
       incr gen
     done
   with e ->
     flush ();
     raise e);
  if !interrupted then flush ();
  let best_fitness, best_genome =
    match !best with
    | Some (f, _, g) -> (f, g)
    | None -> (0, !population.(0))
  in
  { best = best_genome;
    best_fitness;
    found_at = !found_at;
    generations = !generations;
    population = !population;
    interrupted = !interrupted;
  }
