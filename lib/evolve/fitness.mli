(** The batch fitness kernel: sorted-0-1-input counts at population
    scale.

    Fitness of a genome is the number of the [2^wires] zero-one test
    inputs its network sorts (the 0-1 principle makes [2^wires] the
    whole truth); a genome is a perfect sorter iff its fitness is
    {!max_fitness}. Each evaluation is one compile plus a bit-sliced
    sweep ({!Bitslice.count_sorted_range}); whole populations fan out
    across OCaml 5 domains via {!Par.map_list} over (genome, input
    subrange) work units — when a handful of wide genomes could not
    otherwise feed every domain, each genome's [2^wires] sweep splits
    into subranges whose exact counts are summed back per genome — so
    evaluating millions of genomes is the engine's sustained-throughput
    story (the [BENCH_evolve.json] rows assert nets/s). Sampled
    fitness runs on the wide int64 bit-slice path
    ({!Bitslice.count_sorted_masks_wide}, 64 lanes per pass) with one
    reusable scratch block per domain.

    Observability: every genome evaluated bumps ["evolve.evals"]. *)

val max_fitness : wires:int -> int
(** [2 ^ wires]. @raise Invalid_argument if [wires] is outside
    [\[2, 24\]] (the sweep is exponential). *)

val compiled : Compiled.t -> int
(** Fitness of an already-compiled network. *)

val genome : Genome.t -> int
(** Compile and sweep one genome. *)

val population : ?domains:int -> Genome.t array -> int array
(** [population gs] is the fitness of every genome, in order;
    [domains] (default 1) splits the (genome, subrange) work units
    across domains (a work-size threshold keeps small populations of
    narrow genomes sequential). The result is independent of
    [domains]. *)

val sample : Genome.t -> masks:int array -> int
(** Sorted count over an explicit input sample instead of the full
    sweep ({!Bitslice.count_sorted_masks_wide}, using a per-domain
    reusable scratch) — restricted-input fitness for wide genomes
    where [2^wires] is out of reach. *)

val population_sample : ?domains:int -> Genome.t array -> masks:int array -> int array
(** [population_sample gs ~masks] is {!sample} for every genome, in
    order, fanned out like {!population}; each domain reuses its own
    wide-path scratch block. The result is independent of
    [domains]. *)
