let c_evals = Metrics.counter "evolve.evals"

let max_fitness ~wires =
  if wires < 2 || wires > 24 then
    invalid_arg (Printf.sprintf "Fitness.max_fitness: wires %d outside [2,24]" wires);
  1 lsl wires

let compiled c =
  let hi = max_fitness ~wires:(Compiled.wires c) in
  Metrics.incr c_evals;
  Bitslice.count_sorted_range c ~lo:0 ~hi

let genome g = compiled (Compiled.of_network (Genome.to_network g))

(* a subrange sweep only pays once a genome's 2^wires range dwarfs the
   cost of scheduling it: 2^12 inputs = 64 bit-sliced blocks *)
let chunk_min = 1 lsl 12

let population ?(domains = 1) gs =
  let len = Array.length gs in
  if len = 0 then [||]
  else begin
    (* compile once per genome up front; the compiled streams are
       immutable and shared read-only across domains, so a work unit is
       (genome index, input subrange) — when the population alone
       cannot feed every domain (few wide genomes), each genome's
       [0, 2^wires) sweep splits into subranges and the counts are
       summed back per genome, which is exact and order-independent *)
    let cs = Array.map (fun g -> Compiled.of_network (Genome.to_network g)) gs in
    Array.iter (fun _ -> Metrics.incr c_evals) cs;
    let target = 2 * domains in
    let units = ref [] in
    for i = len - 1 downto 0 do
      let hi = max_fitness ~wires:(Compiled.wires cs.(i)) in
      let pieces =
        if domains = 1 || len >= target then 1
        else min ((target + len - 1) / len) (max 1 (hi / chunk_min))
      in
      for p = pieces - 1 downto 0 do
        units := (i, hi * p / pieces, hi * (p + 1) / pieces) :: !units
      done
    done;
    let split = List.length !units > len in
    let counts =
      Par.map_list
        ~min_per_domain:(if split then 1 else 16)
        ~domains
        (fun (i, lo, hi) -> (i, Bitslice.count_sorted_range cs.(i) ~lo ~hi))
        !units
    in
    let out = Array.make len 0 in
    List.iter (fun (i, c) -> out.(i) <- out.(i) + c) counts;
    out
  end

(* one reusable wide-path scratch block per domain *)
let scratch_key = Domain.DLS.new_key (fun () -> Bitslice.scratch ())

let sample g ~masks =
  Metrics.incr c_evals;
  Bitslice.count_sorted_masks_wide
    ~scratch:(Domain.DLS.get scratch_key)
    (Compiled.of_network (Genome.to_network g))
    masks

let population_sample ?(domains = 1) gs ~masks =
  Array.of_list
    (Par.map_list ~min_per_domain:16 ~domains
       (fun g -> sample g ~masks)
       (Array.to_list gs))
