let c_evals = Metrics.counter "evolve.evals"

let max_fitness ~wires =
  if wires < 2 || wires > 24 then
    invalid_arg (Printf.sprintf "Fitness.max_fitness: wires %d outside [2,24]" wires);
  1 lsl wires

let compiled c =
  let hi = max_fitness ~wires:(Compiled.wires c) in
  Metrics.incr c_evals;
  Bitslice.count_sorted_range c ~lo:0 ~hi

let genome g = compiled (Compiled.of_network (Genome.to_network g))

let population ?(domains = 1) gs =
  (* each genome's sweep is independent; the threshold keeps a small
     population from paying a domain spawn per handful of genomes *)
  Array.of_list
    (Par.map_list ~min_per_domain:16 ~domains genome (Array.to_list gs))

let sample g ~masks =
  Metrics.incr c_evals;
  Bitslice.count_sorted_masks (Compiled.of_network (Genome.to_network g)) masks
