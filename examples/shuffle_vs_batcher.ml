(* A tour of the topology layer: butterflies, reverse delta networks,
   the shuffle decomposition, and Benes routing — the substrate the
   lower bound quantifies over.

   Run with:  dune exec examples/shuffle_vs_batcher.exe *)

let section title = Printf.printf "\n== %s ==\n" title

let () =
  let n = 32 in
  let d = Bitops.log2_exact n in

  section "the shuffle permutation";
  let sh = Perm.shuffle n in
  Format.printf "shuffle(%d) has order %d (= lg n): " n (Perm.order sh);
  Format.printf "%d -> %d -> %d -> ...@." 1 (Perm.apply sh 1)
    (Perm.apply sh (Perm.apply sh 1));

  section "lg n shuffle stages = one reverse delta network";
  let rng = Xoshiro.of_seed 5 in
  let prog = Shuffle_net.random_program rng ~n ~stages:d in
  let opss =
    List.map (fun st -> st.Register_model.ops) (Register_model.stages prog)
  in
  let rd = Shuffle_net.block_of_ops ~n opss in
  Printf.printf "parsed a %d-stage shuffle program into a %d-level reverse delta\n"
    d (Reverse_delta.levels rd);
  Printf.printf "cross elements: %d (%d comparators)\n"
    (Reverse_delta.cross_count rd)
    (Reverse_delta.comparator_count rd);
  (* The two forms compute the same function. *)
  let nw_rd = Reverse_delta.to_network ~wires:n rd in
  let nw_prog = Network.flatten (Register_model.to_network prog) in
  let input = Workload.random_permutation rng ~n in
  assert (Network.eval nw_rd input = Network.eval nw_prog input);
  print_endline "register program and reverse delta circuit agree";

  section "the butterfly: delta AND reverse delta";
  let bf = Butterfly.network ~levels:d in
  Format.printf "ascend butterfly:  %a@." Network.pp_stats bf;
  let merger = Butterfly.delta_network ~levels:d in
  let bitonic_seq = Workload.bitonic_input rng ~n in
  let merged = Network.eval merger bitonic_seq in
  Printf.printf "descend butterfly merges a bitonic sequence: %b\n"
    (Sortedness.is_sorted merged);

  section "Batcher's bitonic sorter = lg n reverse delta blocks";
  let it = Bitonic.as_iterated ~n in
  Printf.printf "blocks: %d, levels per block: %d, total comparator depth: %d\n"
    (Iterated.block_count it)
    (Iterated.levels_per_block it)
    (Network.depth (Iterated.to_network it));
  (* Exact 0-1 verification at a width where 2^n is cheap; sampled
     check at this one. *)
  assert (Zero_one.is_sorting_network (Iterated.to_network (Bitonic.as_iterated ~n:16)));
  let nw_it = Iterated.to_network it in
  for _ = 1 to 200 do
    assert (Sortedness.is_sorted (Network.eval nw_it (Workload.random_permutation rng ~n)))
  done;
  print_endline "verified: exact 0-1 check at n=16, 200 random inputs here";

  section "free permutations are cheap (Benes routing)";
  let p = Perm.random rng n in
  let router = Benes.route p in
  Printf.printf
    "a random permutation routed in %d exchange levels (%d crossed switches), \
     comparator depth %d\n"
    (List.length (Network.levels router))
    (Benes.switch_count router)
    (Network.depth router);
  let routed = Network.eval router (Array.init n (fun i -> i)) in
  let ok = ref true in
  for i = 0 to n - 1 do
    if routed.(Perm.apply p i) <> i then ok := false
  done;
  Printf.printf "routing correct: %b\n" !ok
