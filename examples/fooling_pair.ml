(* The paper's headline construction, end to end: take a shuffle-based
   network that is too shallow, run the Lemma 4.1 / Theorem 4.1
   adversary over its reverse delta blocks, refine the resulting input
   pattern into a concrete fooling pair, and demonstrate — by plain
   evaluation — that the network maps two different inputs to the same
   output permutation, so it cannot sort.

   Run with:  dune exec examples/fooling_pair.exe *)

let () =
  let n = 128 in
  let d = Bitops.log2_exact n in
  let blocks = 3 in

  (* A dense shuffle-based network: 3 blocks = 21 comparator levels.
     (Batcher needs lg n (lg n + 1)/2 = 28 levels to sort 128 inputs;
     the paper proves no shuffle-based network of o(lg^2 n / lglg n)
     levels can sort.) *)
  let rng = Xoshiro.of_seed 7 in
  let prog = Shuffle_net.random_program rng ~n ~stages:(blocks * d) in
  let it = Shuffle_net.to_iterated prog in
  Printf.printf "network: %d wires, %d shuffle stages (%d reverse delta blocks)\n"
    n (blocks * d) blocks;

  (* Run the adversary. *)
  let r = Theorem41.run it in
  List.iter
    (fun (b : Theorem41.block_report) ->
      Printf.printf
        "  block %d: entered with |A|=%-3d kept |B|=%-3d in %d sets; best set |D|=%d\n"
        b.index b.a_size b.b_size b.sets b.d_size)
    r.reports;

  match Certificate.of_pattern r.final_pattern with
  | None -> print_endline "adversary lost: the network may sort (it is deep enough)"
  | Some cert ->
      Printf.printf
        "adversary wins: %d wires can still hold mutually-uncompared adjacent values\n"
        (List.length cert.m_set);
      Printf.printf "fooling pair: values %d and %d on wires %d and %d\n"
        cert.value0 cert.value1 cert.wire0 cert.wire1;

      (* Independent validation: trace the actual circuit. *)
      let nw = Iterated.to_network it in
      (match Certificate.validate nw cert with
      | Ok () -> print_endline "certificate validated against the real circuit"
      | Error e -> failwith ("certificate rejected: " ^ e));

      (* Show the collapse concretely. *)
      let out = Network.eval nw cert.input in
      let out' = Network.eval nw cert.twin in
      let differs = ref 0 in
      Array.iteri (fun i v -> if v <> out'.(i) then incr differs) out;
      Printf.printf
        "outputs of the two inputs differ on exactly %d wires (the swapped pair)\n"
        !differs;
      Printf.printf "sorted(out) = %b, sorted(out') = %b -> not a sorting network\n"
        (Sortedness.is_sorted out)
        (Sortedness.is_sorted out')
