(* The other side of the paper's story: why anyone restricts themselves
   to shuffle-only ("strict ascend") dataflow in the first place.  The
   introduction's answer: hypercubic machines run parallel prefix and
   the FFT as single ascend passes.  This example runs both on the
   shuffle-exchange machine — the same machine whose sorting depth the
   paper bounds from below.

   Run with:  dune exec examples/ascend_machine.exe *)

let () =
  let n = 1024 in
  let d = Bitops.log2_exact n in
  Printf.printf "shuffle-exchange machine, n=%d registers, one pass = %d steps\n\n" n d;

  (* parallel prefix in one pass *)
  let v = Array.init n (fun i -> i + 1) in
  let prefix = Prefix.scan ~n ~op:( + ) v in
  Printf.printf "prefix-sum of 1..%d in one ascend pass: last = %d (expect %d)\n" n
    prefix.(n - 1)
    (n * (n + 1) / 2);
  assert (prefix.(n - 1) = n * (n + 1) / 2);

  (* ranks via exclusive scan *)
  let ranks = Prefix.exclusive_scan ~n ~op:( + ) ~zero:0 (Array.make n 1) in
  assert (ranks.(17) = 17);
  Printf.printf "exclusive scan of all-ones gives register ranks: ranks[17] = %d\n"
    ranks.(17);

  (* the FFT (as an exact NTT over Z_p) in one pass *)
  let rng = Xoshiro.of_seed 31 in
  let signal = Array.init n (fun _ -> Xoshiro.int rng ~bound:Ntt.modulus) in
  let spectrum = Ntt.forward ~n signal in
  let back = Ntt.inverse ~n spectrum in
  assert (back = signal);
  Printf.printf "NTT of a random signal round-trips exactly (mod %d)\n" Ntt.modulus;

  (* polynomial multiplication via convolution *)
  let a = Array.make n 0 and b = Array.make n 0 in
  (* (1 + x)^2 * (1 - x) coefficients, well inside degree n *)
  a.(0) <- 1;
  a.(1) <- 2;
  a.(2) <- 1;
  b.(0) <- 1;
  b.(1) <- Ntt.modulus - 1;
  let c = Ntt.convolve ~n a b in
  Printf.printf "(1+x)^2 (1-x) = 1 + %dx + %dx^2 + %dx^3 (mod p: %d = -1)\n"
    c.(1) c.(2) c.(3) (Ntt.modulus - 1);
  assert (c.(0) = 1 && c.(1) = 1 && c.(2) = Ntt.modulus - 1 && c.(3) = Ntt.modulus - 1);

  (* and the punchline: the same machine needs Omega(lg^2 n / lglg n)
     passes-worth of steps to SORT, by the paper's lower bound *)
  Printf.printf
    "\none pass (= %d steps) suffices for prefix and FFT, but sorting needs depth\n\
     >= lg^2 n/(4 lglg n) = %.1f by the paper — and Batcher's %d is the best known.\n"
    d
    (Theorem41.depth_lower_bound ~n)
    (Bitonic.depth_formula ~n)
