(* Quickstart: build a sorting network, sort with it, verify it exactly,
   and look at its structure.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let n = 16 in

  (* 1. Build Batcher's bitonic sorter in its classic circuit form. *)
  let nw = Bitonic.network ~n in
  Format.printf "bitonic sorter on %d wires: %a@." n Network.pp_stats nw;

  (* 2. Sort a random input. *)
  let rng = Xoshiro.of_seed 2024 in
  let input = Workload.random_permutation rng ~n in
  let output = Network.eval nw input in
  Format.printf "input : %a@." Perm.pp (Perm.of_array input);
  Format.printf "output: %a@." Perm.pp (Perm.of_array output);
  assert (Sortedness.is_sorted output);

  (* 3. Verify it is a sorting network, exactly, via the 0-1 principle
     (all 2^16 zero-one inputs, evaluated 62 at a time bit-parallel). *)
  let ok = Zero_one.is_sorting_network nw in
  Printf.printf "verified over all %d zero-one inputs: %b\n" (1 lsl n) ok;
  assert ok;

  (* 4. The same sorter as a shuffle-based register program — the class
     the Plaxton-Suel lower bound is about.  Each of the lg n blocks of
     lg n shuffle stages is one reverse delta network. *)
  let prog = Bitonic.shuffle_program ~n in
  Printf.printf "shuffle form: %d stages of (shuffle, op-vector), depth %d\n"
    (Register_model.stage_count prog)
    (Register_model.depth prog);
  let out2 = Register_model.eval prog input in
  assert (Sortedness.is_sorted out2);

  (* 5. And its depth against the paper's lower-bound curve. *)
  Printf.printf "depth %d vs lower bound %.1f vs trivial %d\n"
    (Bitonic.depth_formula ~n)
    (Theorem41.depth_lower_bound ~n)
    (Bitops.log2_exact n);
  print_endline "quickstart: all checks passed"
