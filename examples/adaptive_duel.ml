(* Section 5's adaptive extension as a playable duel: a network builder
   chooses every shuffle stage's comparator labeling AFTER seeing the
   adversary's entire bookkeeping, and still cannot kill the special
   set much faster than the oblivious network.

   Run with:  dune exec examples/adaptive_duel.exe *)

let play name builder ~n ~blocks =
  let r = Adaptive.run ~n ~blocks builder in
  Printf.printf "%-22s survived %d/%d blocks, final |D| = %d\n" name
    r.Adaptive.survived blocks
    (List.length r.Adaptive.final_m_set);
  (* When the adversary survives, its fooling pair must check out
     against the very network the builder constructed. *)
  if r.Adaptive.survived = blocks then begin
    match Certificate.of_pattern r.Adaptive.final_pattern with
    | Some cert ->
        let nw = Register_model.to_network r.Adaptive.program in
        (match Certificate.validate nw cert with
        | Ok () ->
            Printf.printf
            "  -> fooling pair (swap %d,%d) validated on the adaptively built network\n"
              cert.Certificate.value0 cert.Certificate.value1
        | Error e -> failwith ("certificate rejected: " ^ e))
    | None -> ()
  end;
  r

let () =
  let n = 256 in
  let blocks = 10 in
  Printf.printf
    "adaptive duel on n=%d (%d blocks of %d shuffle stages each)\n\n" n blocks
    (Bitops.log2_exact n);
  let _ = play "oblivious all-compare" Adaptive.oblivious_all_compare ~n ~blocks in
  let _ = play "greedy same-set killer" Adaptive.greedy_killer ~n ~blocks in
  let r = play "steering killer" Adaptive.steering_killer ~n ~blocks in
  Printf.printf
    "\neven with full knowledge of the adversary's sets, the steering builder \
     leaves |D| = %d after %d blocks — adaptivity does not beat the bound.\n"
    (List.length r.Adaptive.final_m_set)
    r.Adaptive.survived
