(* The 0-1 principle at work: exact verification of every sorter in the
   registry, a deliberately broken network caught with a concrete
   witness, and the Section 5 "representative set" angle — counting
   how many 0-1 inputs a too-shallow shuffle network still fails.

   Run with:  dune exec examples/zero_one_audit.exe *)

let () =
  let n = 16 in

  (* 1. Verify every baseline sorter exactly. *)
  List.iter
    (fun e ->
      let nw = e.Sorter_registry.build n in
      let ok = Zero_one.is_sorting_network nw in
      Printf.printf "%-16s n=%d depth=%-3d size=%-4d sorting=%b\n"
        e.Sorter_registry.name n (Network.depth nw) (Network.size nw) ok;
      assert ok)
    Sorter_registry.all;

  (* 2. Break bitonic by deleting its final level; the checker finds a
     concrete 0-1 witness. *)
  let nw = Bitonic.network ~n in
  let broken =
    Network.create ~wires:n
      (List.filteri
         (fun i _ -> i < List.length (Network.levels nw) - 1)
         (Network.levels nw))
  in
  (match Zero_one.failing_input broken with
  | Some w ->
      Printf.printf
        "\nbitonic minus its last level is caught by witness %s\n"
        (String.concat ""
           (List.map string_of_int (Array.to_list w)))
  | None -> failwith "expected the truncated bitonic to fail");

  (* 3. How close to sorting is a truncated shuffle-based sorter?
     Count the 0-1 inputs each bitonic prefix still leaves unsorted —
     the resolution measure behind the Section 5 representative-set
     discussion. *)
  Printf.printf
    "\nshuffle-bitonic prefixes on n=%d: unsorted 0-1 inputs by block\n" n;
  let d = Bitops.log2_exact n in
  let prog = Bitonic.shuffle_program ~n in
  List.iter
    (fun blocks ->
      let stages =
        List.filteri (fun i _ -> i < blocks * d) (Register_model.stages prog)
      in
      let nw = Register_model.to_network (Register_model.create ~n stages) in
      let bad = Zero_one.unsorted_count nw in
      Printf.printf "  %d blocks (%2d stages): %5d / %d unsorted\n" blocks
        (blocks * d) bad (1 lsl n))
    [ 1; 2; 3; 4 ];
  print_endline "\nzero-one audit complete"
