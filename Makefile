# Convenience targets; everything is plain dune underneath.

.PHONY: all build test test-slow bench bench-json tables examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# Long-running searches (n >= 7 reference runs, 2e9-node shuffle
# refutations) excluded from tier-1.
test-slow:
	dune build @search-slow

bench:
	dune exec bench/main.exe

# Engine microbenchmarks only; writes name -> ns/op to BENCH_engine.json
# so successive PRs have a perf trajectory to compare against (plus the
# wide-vs-chunked eval-many rows, asserted >= 3x). The same
# run times the exact-bounds search (pruned vs reference, 1 vs K
# domains, and the arena-vs-legacy n=8 engine rows asserted >= 5x)
# into BENCH_search.json, the static analyzer's throughput
# (networks/sec, comparators/sec) into BENCH_analysis.json, and the
# serve scheduler's 32-client batched-vs-sequential throughput and
# lane-fill ratio into BENCH_serve.json, and the evolutionary search's
# population-fitness kernel (nets/sec at 1 vs K domains), end-to-end
# n=6 rediscovery run, and differential-fuzzer checking rate into
# BENCH_evolve.json. All files must carry the global observability
# counters (obs/ rows) alongside the timings.
bench-json:
	SNLB_BENCH_JSON=BENCH_engine.json SNLB_BENCH_SEARCH_JSON=BENCH_search.json SNLB_BENCH_ANALYSIS_JSON=BENCH_analysis.json SNLB_BENCH_SERVE_JSON=BENCH_serve.json SNLB_BENCH_EVOLVE_JSON=BENCH_evolve.json dune exec bench/main.exe
	grep -q '"obs/engine.cache.hits"' BENCH_engine.json
	grep -q '"obs/engine.cache.evictions"' BENCH_engine.json
	grep -q '"engine/eval-many/chunked-63/wall_ms"' BENCH_engine.json
	grep -q '"engine/eval-many/wide-64/wall_ms"' BENCH_engine.json
	awk -F': ' '/"engine\/eval-many\/speedup"/ { exit !($$2 + 0 >= 3.0) }' BENCH_engine.json
	grep -q '"search/n=6/pruned/domains=1/subsumed"' BENCH_search.json
	grep -q '"obs/search.nodes"' BENCH_search.json
	grep -q '"obs/analysis.redundant_moves"' BENCH_search.json
	grep -q '"search/n=7/pruned-ckpt/domains=1/wall_ms"' BENCH_search.json
	grep -q '"obs/checkpoint.writes"' BENCH_search.json
	grep -q '"obs/checkpoint.bytes"' BENCH_search.json
	grep -q '"obs/checkpoint.write_ms.mean"' BENCH_search.json
	grep -q '"search/n=8/engine=legacy/wall_ms"' BENCH_search.json
	grep -q '"search/n=8/engine=arena/wall_ms"' BENCH_search.json
	grep -q '"obs/arena.states"' BENCH_search.json
	grep -q '"obs/arena.probes"' BENCH_search.json
	grep -q '"obs/arena.bytes"' BENCH_search.json
	awk -F': ' '/"search\/n=8\/arena_speedup"/ { exit !($$2 + 0 >= 5.0) }' BENCH_search.json
	grep -q '"search/n=8/shard/single/wall_ms"' BENCH_search.json
	grep -q '"search/n=8/shard/shards=4/wall_ms"' BENCH_search.json
	grep -q '"obs/shard.spawned"' BENCH_search.json
	grep -q '"obs/shard.completed"' BENCH_search.json
	@if [ "$$(nproc)" -ge 2 ]; then \
	  awk -F': ' '/"search\/n=8\/shard_speedup"/ { exit !($$2 + 0 >= 1.5) }' BENCH_search.json || { echo "shard speedup below 1.5x on a multi-core host" >&2; exit 1; }; \
	else \
	  echo "bench-json: single-core host (nproc=1): no parallel speedup is physically possible; relaxing the 4-shard speedup floor from 1.5x to a 0.5x overhead sanity bound"; \
	  awk -F': ' '/"search\/n=8\/shard_speedup"/ { exit !($$2 + 0 >= 0.5) }' BENCH_search.json || { echo "sharded run more than 2x slower than single-process" >&2; exit 1; }; \
	fi
	grep -q '"analysis/bitonic-n=16/networks_per_s"' BENCH_analysis.json
	grep -q '"analysis/bitonic-n=32/comparators_per_s"' BENCH_analysis.json
	grep -q '"obs/analysis.networks"' BENCH_analysis.json
	grep -q '"serve/verify/batched/requests_per_s"' BENCH_serve.json
	grep -q '"serve/verify/speedup"' BENCH_serve.json
	grep -q '"serve/eval/lane_fill_ratio"' BENCH_serve.json
	grep -q '"obs/serve.verify.sweeps"' BENCH_serve.json
	grep -q '"obs/serve.batch.rounds"' BENCH_serve.json
	awk -F': ' '/"serve\/verify\/speedup"/ { exit !($$2 + 0 >= 3.0) }' BENCH_serve.json
	grep -q '"evolve/fitness/n=8/pop=512/domains=1/nets_per_s"' BENCH_evolve.json
	grep -q '"evolve/fitness/speedup"' BENCH_evolve.json
	grep -q '"evolve/run/n=6/pop=256/wall_ms"' BENCH_evolve.json
	grep -q '"fuzz/nets_per_s"' BENCH_evolve.json
	grep -q '"obs/evolve.evals"' BENCH_evolve.json
	grep -q '"obs/evolve.generations"' BENCH_evolve.json
	grep -q '"obs/fuzz.networks"' BENCH_evolve.json
	awk -F': ' '/"evolve\/fitness\/n=8\/pop=512\/domains=1\/nets_per_s"/ { exit !($$2 + 0 >= 1000.0) }' BENCH_evolve.json

tables:
	dune exec bin/snlb_cli.exe -- table all --quick

examples:
	dune exec examples/quickstart.exe
	dune exec examples/fooling_pair.exe
	dune exec examples/shuffle_vs_batcher.exe
	dune exec examples/adaptive_duel.exe
	dune exec examples/zero_one_audit.exe
	dune exec examples/ascend_machine.exe

clean:
	dune clean
