(* snlb: command-line front end for the sorting-network lower-bound
   library.  Subcommands: list, sort, verify, certify, check, table,
   dot, draw, save, load, lint, search, route, serve, client, evolve,
   fuzz. *)

open Cmdliner

let n_arg =
  let doc = "Input width (must be a power of two for most networks)." in
  Arg.(value & opt int 16 & info [ "n"; "size" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed; every run is deterministic given the seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let algo_arg =
  let doc =
    Printf.sprintf "Sorting network to use; one of: %s."
      (String.concat ", " Sorter_registry.names)
  in
  Arg.(value & opt string "bitonic" & info [ "algo" ] ~docv:"ALGO" ~doc)

let build_sorter algo n =
  match Sorter_registry.find algo with
  | None ->
      Error
        (Printf.sprintf "unknown network %S; try: %s" algo
           (String.concat ", " Sorter_registry.names))
  | Some e ->
      if e.pow2_only && not (Bitops.is_power_of_two n) then
        Error (Printf.sprintf "%s requires n to be a power of two" algo)
      else Ok (e.build n)

let pp_array a =
  "[" ^ String.concat " " (Array.to_list (Array.map string_of_int a)) ^ "]"

(* certificate emission: the emitters in Analysis_cert / Cert_emit /
   Certificate self-check every certificate with [Cert.check] before
   returning it, so a written file is already known to pass
   [snlb check]. *)
let write_certs path certs =
  let text = String.concat "\n" (List.map Cert.to_string certs) in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc text);
  Printf.printf "%d certificate%s written to %s\n" (List.length certs)
    (if List.length certs = 1 then "" else "s")
    path

(* observability: --trace streams span events as NDJSON while the run
   is in flight, --metrics prints the global counter/histogram summary
   after it *)

let trace_arg =
  let doc = "Stream observability span events as NDJSON lines to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Print the global metrics summary (counters and histograms) after the run."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

(* record the resolved fan-out and the auto-pick ceiling as counters so
   --metrics (and the bench JSON built on it) shows the true domain
   count next to the [Par.default_cap] it was clamped by —
   [snlb_parallel] has no Metrics dependency, so the recording lives
   here at the entry points *)
let record_domains domains =
  Metrics.add (Metrics.counter "par.domains") domains;
  Metrics.add (Metrics.counter "par.domains.default_cap") Par.default_cap

let print_metrics () =
  let t =
    Ascii_table.create
      ~columns:[ ("metric", Ascii_table.Left); ("value", Ascii_table.Right) ]
  in
  List.iter (fun (name, v) -> Ascii_table.add_row t [ name; v ]) (Obs.summary ());
  Ascii_table.print t

let with_obs ~trace ~metrics f =
  let oc = Option.map open_out trace in
  let sink = match oc with None -> Sink.null | Some oc -> Sink.ndjson oc in
  Fun.protect
    ~finally:(fun () -> Option.iter close_out oc)
    (fun () ->
      let code = f sink in
      if metrics then print_metrics ();
      code)

(* Exit codes. 0 = success (including exhaustive negative verdicts);
   1 = genuine failure (non-sorting witness, invalid certificate, bad
   input file); 2 = usage error (also Cmdliner's own parse errors, via
   ~term_err below); 3 = budget exhausted before any verdict; 130 =
   interrupted by a signal or cancellation (the shell convention for
   death-by-SIGINT), with progress saved when a checkpoint is
   configured. *)

let exit_failure = 1
let exit_usage = 2
let exit_budget = 3
let exit_interrupted = 130

let usage_error msg =
  prerr_endline msg;
  exit_usage

let c_interrupted = Metrics.counter "run.interrupted"

(* Long-running subcommands poll a cooperative token at their natural
   boundaries; SIGINT/SIGTERM trip it, so the run drains cleanly,
   flushes its final checkpoint, and reports a distinct exit code
   instead of dying with a torn file. *)
let with_signals f =
  let cancel = Cancel.create () in
  let install sg =
    match Sys.signal sg (Sys.Signal_handle (fun _ -> Cancel.cancel cancel)) with
    | old -> Some (sg, old)
    | exception Invalid_argument _ | exception Sys_error _ -> None
  in
  let installed = List.filter_map install [ Sys.sigint; Sys.sigterm ] in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (sg, old) -> try Sys.set_signal sg old with _ -> ())
        installed)
    (fun () -> f cancel)

let interrupted_exit what =
  Metrics.incr c_interrupted;
  flush stdout;
  Printf.eprintf "snlb: %s interrupted\n%!" what;
  exit_interrupted

(* --checkpoint / --checkpoint-interval / --resume, shared by the
   subcommands that can run for hours (search, certify) *)

let checkpoint_arg =
  let doc =
    "Write crash-safe progress snapshots to $(docv) (atomic rename; the \
     previous snapshot is kept as $(docv).bak)."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let interval_arg =
  let doc =
    "Seconds between checkpoint writes (0 = every consistent boundary)."
  in
  Arg.(value & opt float 60. & info [ "checkpoint-interval" ] ~docv:"SECS" ~doc)

let resume_arg =
  let doc =
    "Resume from the snapshot at --checkpoint instead of starting fresh \
     (a missing or damaged snapshot degrades to a fresh run)."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

(* --shard-dir, shared by the subcommands that fork worker processes
   (search --shards, evolve --islands) *)

let shard_dir_arg =
  let doc =
    "Scratch directory for the shard supervisor's work-unit, result and \
     heartbeat files (default: a fresh directory under the system temp \
     dir, removed again on success; kept for postmortem on failure)."
  in
  Arg.(value & opt (some string) None & info [ "shard-dir" ] ~docv:"DIR" ~doc)

let default_shard_dir what =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "snlb-%s-%d" what (Unix.getpid ()))

(* Best-effort: only called on the default temp-dir scratch space,
   never on a user-supplied --shard-dir. *)
let cleanup_shard_dir dir =
  match Sys.readdir dir with
  | entries ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        entries;
      (try Sys.rmdir dir with Sys_error _ -> ())
  | exception Sys_error _ -> ()

(* sort *)

let sort_cmd =
  let run algo n seed =
    match build_sorter algo n with
    | Error e -> usage_error e
    | Ok nw ->
        let rng = Xoshiro.of_seed seed in
        let input = Workload.random_permutation rng ~n in
        let out = Network.eval nw input in
        Printf.printf "network : %s\n" algo;
        Format.printf "stats   : %a@." Network.pp_stats nw;
        Printf.printf "input   : %s\n" (pp_array input);
        Printf.printf "output  : %s\n" (pp_array out);
        Printf.printf "sorted  : %b\n" (Sortedness.is_sorted out);
        0
  in
  let doc = "Build a sorting network and run it on a random input." in
  Cmd.v (Cmd.info "sort" ~doc) Term.(const run $ algo_arg $ n_arg $ seed_arg)

(* verify *)

let verify_cmd =
  let domains_arg =
    let doc =
      "Parallel domains for the 2^n-input sweep (0 = auto; the \
       SNLB_DOMAINS environment variable pins the auto choice)."
    in
    Arg.(value & opt int 0 & info [ "domains" ] ~docv:"D" ~doc)
  in
  let run algo n domains trace metrics =
    match build_sorter algo n with
    | Error e -> usage_error e
    | Ok nw ->
        let domains =
          if domains <= 0 then Par.recommended_domains () else domains
        in
        record_domains domains;
        with_obs ~trace ~metrics @@ fun sink ->
        Printf.printf "verifying %s on n=%d over all %d zero-one inputs...\n%!"
          algo n (1 lsl n);
        let answer =
          Span.run ~sink ~name:"verify" @@ fun sp ->
          Span.add sp "algo" (Sink.Str algo);
          Span.add sp "n" (Sink.Int n);
          Span.add sp "domains" (Sink.Int domains);
          Zero_one.verify ~domains nw
        in
        (match answer with
        | Ok () ->
            Printf.printf "sorting network: true\n";
            0
        | Error witness ->
            Printf.printf "sorting network: false\n";
            Printf.printf "failing input: %s\n" (pp_array witness);
            Printf.printf "network output: %s\n"
              (pp_array (Network.eval nw witness));
            1)
  in
  let doc =
    "Exactly verify a network via the 0-1 principle (n <= 26), \
     bit-sliced 63 inputs per word on the compiled engine."
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(const run $ algo_arg $ n_arg $ domains_arg $ trace_arg $ metrics_arg)

(* certify *)

let certify_cmd =
  let kind_arg =
    let doc = "Network family: all-plus, random, or bitonic." in
    Arg.(value & opt string "random" & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let blocks_arg =
    let doc = "Number of lg-n-stage shuffle blocks." in
    Arg.(value & opt int 2 & info [ "blocks" ] ~docv:"B" ~doc)
  in
  let file_arg =
    let doc =
      "Run the adversary against a serialised network instead of a \
       generated family. The network must statically conform to the \
       paper's iterated-reverse-delta topology (checked by the \
       analyzer's recognizer); non-conforming inputs are rejected \
       before any adversary work."
    in
    Arg.(value & opt (some string) None & info [ "file" ] ~docv:"NET" ~doc)
  in
  let emit_cert_arg =
    let doc =
      "After validating the fooling pair, also package it as a portable \
       lower-bound certificate (register-model stage transcript) and \
       write it to $(docv) for $(b,snlb check)."
    in
    Arg.(value & opt (some string) None & info [ "emit-cert" ] ~docv:"FILE" ~doc)
  in
  let run kind file n blocks seed emit ckpt resume trace metrics =
    if resume && ckpt = None then
      usage_error "certify: --resume needs --checkpoint FILE"
    else if file = None && not (Bitops.is_power_of_two n) then
      usage_error "certify: n must be a power of two"
    else begin
      let from_file =
        match file with
        | None -> Ok None
        | Some path -> (
            match Network_io.load path with
            | Error e -> Error (path ^ ": " ^ e)
            | Ok nw -> (
                (* Theorem 4.1's precondition, decided statically: the
                   circuit must be an iterated reverse delta network *)
                match Conform.to_iterated nw with
                | Error e ->
                    Error
                      (Printf.sprintf
                         "%s: not an iterated reverse delta network (%s); \
                          Theorem 4.1 does not apply"
                         path e)
                | Ok it -> Ok (Some (nw, it))))
      in
      match from_file with
      | Error e ->
          prerr_endline ("certify: " ^ e);
          exit_failure
      | Ok maybe_it ->
      with_obs ~trace ~metrics @@ fun sink ->
      with_signals @@ fun cancel ->
      (* [emit_net] is the register-model form of the same circuit —
         the stage-transcript shape the portable certificate encodes.
         A loaded file is used as-is (emission rejects it if its gates
         are off the register pairs); a generated program converts
         exactly. *)
      let it, emit_net =
        match maybe_it with
        | Some (nw, it) -> (it, nw)
        | None ->
            let d = Bitops.log2_exact n in
            let rng = Xoshiro.of_seed seed in
            let prog =
              match kind with
              | "all-plus" ->
                  Shuffle_net.all_plus_program ~n ~stages:(blocks * d)
              | "random" ->
                  Shuffle_net.random_program rng ~n ~stages:(blocks * d)
              | "bitonic" -> Bitonic.shuffle_program ~n
              | other ->
                  prerr_endline ("unknown kind " ^ other ^ ", using random");
                  Shuffle_net.random_program rng ~n ~stages:(blocks * d)
            in
            (Shuffle_net.to_iterated prog, Register_model.to_network prog)
      in
      let n = Iterated.n it in
      let d = Bitops.log2_exact n in
      let r = Theorem41.run ~sink ~cancel ?checkpoint:ckpt ~resume it in
      Printf.printf "n=%d, %d blocks of %d shuffle stages\n" n
        (Iterated.block_count it) d;
      List.iter
        (fun (b : Theorem41.block_report) ->
          Printf.printf "  block %d: |A|=%d |B|=%d sets=%d |D|=%d\n" b.index
            b.a_size b.b_size b.sets b.d_size)
        r.reports;
      Printf.printf "blocks survived: %d / %d\n" r.survived
        (Iterated.block_count it);
      if r.interrupted then begin
        Printf.printf "adversary interrupted after %d blocks\n"
          (List.length r.reports);
        interrupted_exit "certify"
      end
      else
        match Certificate.of_pattern r.final_pattern with
        | None ->
            Printf.printf
              "adversary defeated: no fooling pair (network may sort).\n";
            0
        | Some cert -> (
            let nw = Iterated.to_network it in
            Printf.printf "fooling pair: swap values %d,%d (wires %d,%d)\n"
              cert.Certificate.value0 cert.Certificate.value1
              cert.Certificate.wire0 cert.Certificate.wire1;
            match Certificate.validate nw cert with
            | Ok () -> (
                Printf.printf
                  "certificate VALID: the network is not a sorting network.\n";
                match emit with
                | None -> 0
                | Some path -> (
                    match Certificate.to_cert emit_net cert with
                    | Ok c ->
                        write_certs path [ c ];
                        0
                    | Error e ->
                        Printf.eprintf "certify: cannot emit certificate: %s\n"
                          e;
                        exit_failure))
            | Error e ->
                Printf.printf "certificate INVALID: %s\n" e;
                exit_failure)
    end
  in
  let doc =
    "Run the Plaxton-Suel adversary against a shuffle-based network and \
     emit a validated fooling pair. With --checkpoint the adversary \
     snapshots its state after every block and --resume continues an \
     interrupted run."
  in
  Cmd.v (Cmd.info "certify" ~doc)
    Term.(
      const run $ kind_arg $ file_arg $ n_arg $ blocks_arg $ seed_arg
      $ emit_cert_arg $ checkpoint_arg $ resume_arg $ trace_arg $ metrics_arg)

(* table *)

let table_cmd =
  let id_arg =
    let doc = "Experiment id (E1..E13) or 'all'." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc)
  in
  let quick_arg =
    let doc = "Smaller sweeps (seconds instead of minutes)." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let run id quick =
    if String.lowercase_ascii id = "all" then begin
      Registry.run_all ~quick;
      0
    end
    else
      match Registry.find id with
      | Some e ->
          e.Registry.run ~quick;
          0
      | None ->
          Printf.eprintf "unknown experiment %s; known: %s, all\n" id
            (String.concat ", " (List.map (fun e -> e.Registry.id) Registry.all));
          exit_usage
  in
  let doc = "Regenerate an experiment table (see EXPERIMENTS.md)." in
  Cmd.v (Cmd.info "table" ~doc) Term.(const run $ id_arg $ quick_arg)

(* dot *)

let dot_cmd =
  let out_arg =
    let doc = "Output file (stdout if omitted)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run algo n out =
    match build_sorter algo n with
    | Error e -> usage_error e
    | Ok nw ->
        let dot = Network.to_dot nw in
        (match out with
        | None -> print_string dot
        | Some f ->
            let oc = open_out f in
            output_string oc dot;
            close_out oc);
        0
  in
  let doc = "Export a network as Graphviz DOT." in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run $ algo_arg $ n_arg $ out_arg)

(* draw *)

let draw_cmd =
  let run algo n =
    match build_sorter algo n with
    | Error e -> usage_error e
    | Ok nw ->
        print_string (Diagram.render nw);
        0
  in
  let doc = "Draw a network as a Knuth-style ASCII diagram (n <= 64)." in
  Cmd.v (Cmd.info "draw" ~doc) Term.(const run $ algo_arg $ n_arg)

(* save / load *)

let save_cmd =
  let file_arg =
    let doc = "Destination file." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run algo n file =
    match build_sorter algo n with
    | Error e -> usage_error e
    | Ok nw ->
        (match Network_io.save file nw with
        | Ok () ->
            Printf.printf "wrote %s (%d wires, %d comparators)\n" file
              (Network.wires nw) (Network.size nw);
            0
        | Error e ->
            Printf.eprintf "%s: %s\n" file e;
            exit_failure)
  in
  let doc = "Serialise a network to the snlb text format." in
  Cmd.v (Cmd.info "save" ~doc) Term.(const run $ algo_arg $ n_arg $ file_arg)

let load_cmd =
  let file_arg =
    let doc = "Network file in the snlb text format." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let check_arg =
    let doc =
      "Analysis gate: $(b,off) loads anything parseable, $(b,warn) \
       (default) rejects networks with error-severity diagnostics, \
       $(b,strict) also rejects warnings (dead comparators, untouched \
       channels, ...)."
    in
    Arg.(
      value
      & opt (enum [ ("off", Analysis.Off); ("warn", Analysis.Warn);
                    ("strict", Analysis.Strict) ]) Analysis.Warn
      & info [ "check" ] ~docv:"MODE" ~doc)
  in
  let run file check =
    match Network_io.load file with
    | Error e ->
        Printf.eprintf "%s: %s\n" file e;
        1
    | Ok nw ->
        (* warning/error diagnostics go to stderr; proved-fact infos
           stay in [snlb lint], keeping clean-network output stable *)
        let show diags =
          List.iter
            (fun d ->
              if d.Diag.severity <> Diag.Info then prerr_endline (Diag.to_text d))
            diags
        in
        (match Analysis.check ~strictness:check nw with
        | Error diags ->
            show diags;
            Printf.eprintf "%s: rejected by the analysis gate (--check off to bypass)\n"
              file;
            1
        | Ok diags ->
            show diags;
            Format.printf "%s: %a@." file Network.pp_stats nw;
            (if Network.wires nw <= 20 then
               Printf.printf "sorting network: %b\n" (Zero_one.is_sorting_network nw));
            0)
  in
  let doc =
    "Load a serialised network through the analysis gate, print stats \
     and verify it."
  in
  Cmd.v (Cmd.info "load" ~doc) Term.(const run $ file_arg $ check_arg)

(* lint *)

let lint_cmd =
  let file_arg =
    let doc =
      "Network file to lint (snlb text format); omit to lint a \
       registry network chosen with --algo/-n."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let format_arg =
    let doc = "Output format: $(b,text) or $(b,json) (NDJSON, one \
               diagnostic per line)." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let exact_max_arg =
    let doc =
      "Widest network analysed with the exact reachable-set domain; \
       wider ones use the sound order-bounds approximation."
    in
    Arg.(value & opt int 12 & info [ "exact-max" ] ~docv:"N" ~doc)
  in
  let strict_arg =
    let doc = "Exit 1 on warnings too, not just errors." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let emit_cert_arg =
    let doc =
      "Write proof-carrying certificates for the analyzer's verdicts \
       to $(docv): a sortedness certificate (reach, bounds, or a \
       refutation witness) plus, when dead/redundant comparators were \
       found in the exact domain, their reachable-set facts. Exits 1 \
       if no certificate backs the verdict (bounds domain \
       undecided)."
    in
    Arg.(value & opt (some string) None & info [ "emit-cert" ] ~docv:"FILE" ~doc)
  in
  let opt_str name = function None -> name ^ ": no" | Some v ->
    Printf.sprintf "%s: yes (%d)" name v
  in
  let run file algo n fmt exact_max strict emit metrics =
    let nw =
      match file with
      | Some path -> (
          match Network_io.load path with
          | Ok nw -> Ok (path, nw)
          | Error e -> Error (path ^ ": " ^ e))
      | None -> (
          match build_sorter algo n with
          | Ok nw -> Ok (Printf.sprintf "%s n=%d" algo n, nw)
          | Error e -> Error e)
    in
    match nw with
    | Error e -> usage_error ("lint: " ^ e)
    | Ok (name, nw) ->
        let r =
          Analysis.analyze ~exact_max_wires:exact_max ~cross_check:true nw
        in
        (match fmt with
        | `Json ->
            List.iter (fun d -> print_endline (Diag.to_json d)) r.diags
        | `Text ->
            List.iter (fun d -> print_endline (Diag.to_text d)) r.diags;
            let f = r.facts in
            Printf.printf
              "%s: %d wires, %d levels, %d comparators (%d dead, %d \
               redundant), %s, %s, %s\n"
              name f.wires f.levels f.comparators (List.length f.dead)
              (List.length f.redundant)
              (opt_str "shuffle-based" f.shuffle_stages)
              (opt_str "iterated reverse delta" f.reverse_delta_blocks)
              (opt_str "delta" f.delta_blocks));
        if metrics then print_metrics ();
        let emit_status =
          match emit with
          | None -> 0
          | Some path -> (
              match Analysis_cert.sortedness ~exact_max_wires:exact_max nw with
              | Error e ->
                  Printf.eprintf "lint: cannot emit certificate: %s\n" e;
                  1
              | Ok sc -> (
                  match
                    Analysis_cert.dead_gates ~exact_max_wires:exact_max nw
                  with
                  | Error e ->
                      Printf.eprintf "lint: cannot emit certificate: %s\n" e;
                      1
                  | Ok dc ->
                      write_certs path
                        (sc :: Option.to_list dc);
                      0))
        in
        let errs = Diag.count r.diags Diag.Error
        and warns = Diag.count r.diags Diag.Warning in
        if errs > 0 || (strict && warns > 0) || emit_status > 0 then 1 else 0
  in
  let doc =
    "Statically analyse a comparator network: abstract-interpretation \
     sortedness and dead/redundant-comparator proofs, structural lints, \
     and shuffle/delta topology conformance. Exits 1 when an \
     error-severity diagnostic is present (with --strict, warnings \
     too)."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run $ file_arg $ algo_arg $ n_arg $ format_arg $ exact_max_arg
      $ strict_arg $ emit_cert_arg $ metrics_arg)

(* check *)

let check_cmd =
  let file_arg =
    let doc =
      "Certificate file in the snlb-cert text format (one or more \
       certificates, as written by --emit-cert)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    match In_channel.with_open_text file In_channel.input_all with
    | exception Sys_error e -> usage_error ("check: " ^ e)
    | text -> (
        match Cert.parse text with
        | Error e ->
            Printf.printf "REJECTED %s %s: %s\n" e.Cert.code e.Cert.where
              e.Cert.reason;
            exit_failure
        | Ok certs ->
            let bad = ref 0 in
            List.iteri
              (fun i c ->
                match Cert.check c with
                | Ok () ->
                    Printf.printf "cert %d (%s): OK\n" (i + 1)
                      (Cert.kind_name c)
                | Error e ->
                    incr bad;
                    Printf.printf "cert %d (%s): REJECTED %s %s: %s\n" (i + 1)
                      (Cert.kind_name c) e.Cert.code e.Cert.where e.Cert.reason)
              certs;
            if !bad = 0 then begin
              Printf.printf "all %d certificate%s OK\n" (List.length certs)
                (if List.length certs = 1 then "" else "s");
              0
            end
            else exit_failure)
  in
  let doc =
    "Validate proof-carrying certificates with the independent checker. \
     The checker re-derives every claim from the certificate text alone \
     — it shares no code with the engine, searcher, or analyzer that \
     produced the verdict. Exits 0 only if every certificate in the \
     file checks; a rejected certificate prints a typed CRT*** \
     diagnostic."
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ file_arg)

(* search *)

let search_cmd =
  let search_n_arg =
    let doc = "Number of channels." in
    Arg.(value & opt int 6 & info [ "n"; "size" ] ~docv:"N" ~doc)
  in
  let depth_arg =
    let doc =
      "Decide whether some network of at most $(docv) layers (stages in      --shuffle mode) sorts, instead of certifying the optimum."
    in
    Arg.(value & opt (some int) None & info [ "depth" ] ~docv:"D" ~doc)
  in
  let optimal_arg =
    let doc =
      "Certify the exact optimal depth (the default when --depth is absent)."
    in
    Arg.(value & flag & info [ "optimal" ] ~doc)
  in
  let shuffle_arg =
    let doc =
      "Search shuffle-based networks only (Knuth 5.3.4.47 / the paper's      Section 6) instead of free comparator layers."
    in
    Arg.(value & flag & info [ "shuffle" ] ~doc)
  in
  let domains_arg =
    let doc = "Worker domains for expansion and subsumption filtering." in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"K" ~doc)
  in
  let engine_arg =
    let doc =
      "Search engine: $(b,auto) picks the packed arena whenever the moves \
       are plain comparator layers (the free search; --shuffle always runs \
       legacy), $(b,arena) forces it, $(b,legacy) forces the boxed \
       list/Hashtbl path. Both engines make identical decisions."
    in
    Arg.(
      value
      & opt
          (enum [ ("auto", `Auto); ("legacy", `Legacy); ("arena", `Arena) ])
          `Auto
      & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let max_depth_arg =
    let doc = "Depth cap for optimal search (default: n, or 6 with --shuffle)." in
    Arg.(value & opt (some int) None & info [ "max-depth" ] ~docv:"D" ~doc)
  in
  let budget_arg =
    let doc = "Search budget in nodes (move applications)." in
    Arg.(value & opt int 200_000_000 & info [ "budget" ] ~docv:"NODES" ~doc)
  in
  let shards_arg =
    let doc =
      "Fan each level's frontier expansion out over $(docv) forked worker \
       processes under the fault-tolerant shard supervisor (0 = stay \
       in-process). The merged outcome, witness and statistics are \
       identical to the single-process search."
    in
    Arg.(value & opt int 0 & info [ "shards" ] ~docv:"K" ~doc)
  in
  let emit_cert_arg =
    let doc =
      "Write an exhaustion certificate for the search's negative claim \
       to $(docv): the per-level surviving frontiers plus, for every \
       expanded child, a subsumption witness (cited pool entry and wire \
       permutation) the independent checker replays. Forces the \
       unrestricted reference search (every layer, equality-only \
       dedup), whose frontier log both engines reproduce byte-for-byte. \
       On an $(b,--optimal) run that finds a depth-$(i,d) sorter, emits \
       exhaustion at depth $(i,d-1) plus a sortedness certificate for \
       the witness network — together a proof of optimality. Not \
       available with --shuffle, --shards, or --resume."
    in
    Arg.(value & opt (some string) None & info [ "emit-cert" ] ~docv:"FILE" ~doc)
  in
  let pp_layer layer =
    String.concat "" (List.map (fun (i, j) -> Printf.sprintf "(%d,%d)" i j) layer)
  in
  let print_stats (s : Driver.stats) =
    Printf.printf
      "nodes: %d  pruned: %d  deduped: %d  subsumed: %d  redundant: %d  \
       peak frontier: %d\n"
      s.Driver.nodes s.Driver.pruned s.Driver.deduped s.Driver.subsumed
      s.Driver.redundant s.Driver.peak_frontier
  in
  let run n depth _optimal shuffle domains engine max_depth budget shards
      shard_dir emit ckpt interval resume trace metrics =
    let budget = { Driver.max_nodes = budget; max_seconds = None } in
    record_domains domains;
    if resume && ckpt = None then
      usage_error "search: --resume needs --checkpoint FILE"
    else if shards < 0 then usage_error "search: --shards must be >= 0"
    else if shards > 0 && shuffle then
      usage_error "search: --shards does not support --shuffle"
    else if shards > 0 && (ckpt <> None || resume) then
      usage_error "search: --shards does not support --checkpoint/--resume"
    else if emit <> None && shuffle then
      usage_error "search: --emit-cert does not support --shuffle"
    else if emit <> None && shards > 0 then
      usage_error "search: --emit-cert does not support --shards"
    else if emit <> None && resume then
      usage_error
        "search: --emit-cert needs the full frontier log; not available \
         with --resume"
    else begin
      let checkpoint = Option.map (fun path -> (path, interval)) ckpt in
      let resume_state =
        if not resume then None
        else
          match Driver.resume ~path:(Option.get ckpt) with
          | Ok rs ->
              Printf.eprintf "snlb: resuming %s\n%!" (Driver.describe rs);
              Some rs
          | Error e ->
              Printf.eprintf "snlb: cannot resume (%s); starting fresh\n%!" e;
              None
      in
      if shuffle then begin
        if not (Bitops.is_power_of_two n) || n < 2 || n > 16 then
          usage_error "search: --shuffle needs n a power of two in [2,16]"
        else
          with_obs ~trace ~metrics @@ fun sink ->
          with_signals @@ fun cancel ->
          match depth with
          | Some depth -> (
              match
                Min_depth.search ~n ~depth ~budget ~domains ~sink ~cancel
                  ?checkpoint ?resume:resume_state ()
              with
              | Min_depth.Sorter prog ->
                  Printf.printf "depth-%d shuffle-based sorter EXISTS for n=%d " depth n;
                  Printf.printf "(witness verified: %b)\n"
                    (Min_depth.verify_witness ~n prog);
                  List.iteri
                    (fun i ops ->
                      Printf.printf "  stage %d: " (i + 1);
                      Array.iter (fun op -> Format.printf "%a" Register_model.pp_op op) ops;
                      print_newline ())
                    prog;
                  0
              | Min_depth.Impossible ->
                  Printf.printf "no depth-%d shuffle-based sorter for n=%d (exhaustive)\n"
                    depth n;
                  0
              | Min_depth.Inconclusive ->
                  Printf.printf "inconclusive within %d nodes; raise --budget\n"
                    budget.Driver.max_nodes;
                  exit_budget
              | Min_depth.Interrupted -> interrupted_exit "search")
          | None -> (
              let max_depth = Option.value max_depth ~default:6 in
              match
                Min_depth.minimal_depth ~n ~max_depth ~budget ~domains ~sink
                  ~cancel ?checkpoint ?resume:resume_state ()
              with
              | Min_depth.Minimal (depth, _) ->
                  Printf.printf
                    "minimal shuffle-based sorter depth for n=%d: %d (bitonic: %d)\n" n
                    depth (Bitonic.depth_formula ~n);
                  0
              | Min_depth.No_sorter ->
                  Printf.printf "no sorter within %d stages\n" max_depth;
                  0
              | Min_depth.Unknown k ->
                  Printf.printf
                    "inconclusive: stages <= %d refuted within %d nodes; raise --budget\n"
                    k budget.Driver.max_nodes;
                  exit_budget
              | Min_depth.Stopped k ->
                  Printf.printf "stages <= %d refuted before interruption\n" k;
                  interrupted_exit "search")
      end
      else if n < 2 || n > 10 then
        usage_error "search: n must be in [2,10] (state space is 2^n)"
      else begin
        with_obs ~trace ~metrics @@ fun sink ->
        with_signals @@ fun cancel ->
        let max_depth =
          match (max_depth, depth) with
          | Some d, _ -> d
          | None, Some d -> d
          | None, None -> n
        in
        let report = function
          | Driver.Sorted { depth; moves; stats } ->
              Printf.printf "optimal depth for n=%d: %d (witness verified: %b)\n"
                n depth
                (Driver.verify_witness ~n moves);
              List.iteri
                (fun i layer ->
                  Printf.printf "  layer %d: %s\n" (i + 1) (pp_layer layer))
                moves;
              print_stats stats;
              0
          | Driver.Unsorted stats ->
              Printf.printf
                "no sorting network of depth <= %d for n=%d (exhaustive)\n"
                max_depth n;
              print_stats stats;
              0
          | Driver.Inconclusive stats ->
              Printf.printf
                "inconclusive within %d nodes (depths <= %d refuted); raise --budget\n"
                budget.Driver.max_nodes stats.Driver.completed_levels;
              print_stats stats;
              exit_budget
          | Driver.Interrupted stats ->
              Printf.printf "depths <= %d refuted before interruption\n"
                stats.Driver.completed_levels;
              print_stats stats;
              interrupted_exit "search"
        in
        if shards > 0 then begin
          let dir =
            match shard_dir with
            | Some d -> d
            | None -> default_shard_dir "shard-search"
          in
          match
            Shard_search.run ~sink ~cancel ~budget ~shards ~dir ~max_depth
              (Driver.network_system ~n ())
          with
          | Error e ->
              Printf.eprintf "snlb: search: %s\n%!" e;
              1
          | Ok outcome ->
              if shard_dir = None then cleanup_shard_dir dir;
              report outcome
        end
        else
          match emit with
          | None ->
              report
                (Driver.optimal_depth ~domains ~engine ~budget ~sink ~cancel
                   ?checkpoint ?resume:resume_state ~max_depth ~n ())
          | Some path ->
              (* The exhaustion certificate replays every child of every
                 frontier state, so the log must come from the
                 unrestricted reference search: every layer, equality-
                 only dedup. The restricted search's symmetry-reduced
                 second layers leave children no pool entry covers. *)
              let frontiers = ref [] in
              let frontier_log ~level:_ states =
                frontiers := states :: !frontiers
              in
              let outcome =
                Driver.optimal_depth ~domains ~engine ~budget ~sink ~cancel
                  ~frontier_log ?checkpoint ~restrict:false ~max_depth ~n ()
              in
              let frontiers = List.rev !frontiers in
              let code = report outcome in
              let emitted =
                match outcome with
                | Driver.Unsorted _ ->
                    Result.map
                      (fun c -> [ c ])
                      (Cert_emit.exhaustion ~n ~max_depth ~frontiers)
                | Driver.Sorted { depth; moves; _ } ->
                    let sorted =
                      Analysis_cert.sortedness (Driver.witness_network ~n moves)
                    in
                    let exhausted =
                      if depth <= 1 then Ok []
                      else
                        Result.map
                          (fun c -> [ c ])
                          (Cert_emit.exhaustion ~n ~max_depth:(depth - 1)
                             ~frontiers)
                    in
                    (match (exhausted, sorted) with
                    | Ok ex, Ok sc -> Ok (ex @ [ sc ])
                    | Error e, _ | _, Error e -> Error e)
                | Driver.Inconclusive _ | Driver.Interrupted _ ->
                    Error "search ended without a verdict"
              in
              (match emitted with
              | Ok certs ->
                  write_certs path certs;
                  code
              | Error e ->
                  Printf.eprintf "search: cannot emit certificate: %s\n" e;
                  if code = 0 then exit_failure else code)
      end
    end
  in
  let doc =
    "Exact optimal-depth search for small sorting networks: layered BFS with      subsumption pruning; --shuffle restricts to shuffle-based sorters      (Knuth 5.3.4.47 / the paper's Section 6). With --checkpoint the      search snapshots its progress at level boundaries and --resume      continues an interrupted run from the last snapshot."
  in
  Cmd.v (Cmd.info "search" ~doc)
    Term.(
      const run $ search_n_arg $ depth_arg $ optimal_arg $ shuffle_arg
      $ domains_arg $ engine_arg $ max_depth_arg $ budget_arg $ shards_arg
      $ shard_dir_arg $ emit_cert_arg $ checkpoint_arg $ interval_arg
      $ resume_arg $ trace_arg $ metrics_arg)

(* evolve *)

let evolve_cmd =
  let n_arg =
    let doc = "Number of channels." in
    Arg.(value & opt int 6 & info [ "n"; "size" ] ~docv:"N" ~doc)
  in
  let depth_arg =
    let doc =
      "Fixed genome depth shape (default: the known optimal sorting depth \
       for N when proved, else N)."
    in
    Arg.(value & opt (some int) None & info [ "depth" ] ~docv:"D" ~doc)
  in
  let pop_arg =
    let doc = "Population size." in
    Arg.(value & opt int 256 & info [ "pop" ] ~docv:"P" ~doc)
  in
  let gens_arg =
    let doc = "Generation cap." in
    Arg.(value & opt int 200 & info [ "gens" ] ~docv:"G" ~doc)
  in
  let domains_arg =
    let doc = "Parallel domains for the fitness fan-out (0 = auto)." in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"K" ~doc)
  in
  let islands_arg =
    let doc =
      "Evolve $(docv) independent populations (island model), each in a \
       forked worker process under the fault-tolerant shard supervisor, \
       synchronising every --epoch generations (0 = a single in-process \
       population)."
    in
    Arg.(value & opt int 0 & info [ "islands" ] ~docv:"K" ~doc)
  in
  let epoch_arg =
    let doc =
      "Generations per island between synchronisation barriers (migration \
       and champion comparison happen at the barrier)."
    in
    Arg.(value & opt int 10 & info [ "epoch" ] ~docv:"G" ~doc)
  in
  let migrants_arg =
    let doc =
      "Elite genomes each island sends to its ring neighbour at every \
       barrier (must be at most half the population)."
    in
    Arg.(value & opt int 2 & info [ "migrants" ] ~docv:"M" ~doc)
  in
  let run n depth pop gens seed domains islands epoch migrants shard_dir ckpt
      interval resume trace metrics =
    if resume && ckpt = None then
      usage_error "evolve: --resume needs --checkpoint FILE"
    else if n < 2 || n > 16 then usage_error "evolve: n must be in [2,16]"
    else if islands < 0 then usage_error "evolve: --islands must be >= 0"
    else if islands > 0 && (ckpt <> None || resume) then
      usage_error "evolve: --islands does not support --checkpoint/--resume"
    else if islands > 0 && epoch < 1 then
      usage_error "evolve: --epoch must be >= 1"
    else if islands > 0 && (migrants < 0 || migrants > pop / 2) then
      usage_error "evolve: --migrants must be in [0, pop/2]"
    else begin
      let depth =
        match depth with
        | Some d -> d
        | None -> (
            match Evolve.known_optimal_depth n with Some d -> d | None -> n)
      in
      let domains =
        if domains <= 0 then Par.recommended_domains () else domains
      in
      record_domains domains;
      with_obs ~trace ~metrics @@ fun sink ->
      with_signals @@ fun cancel ->
      let cfg =
        { (Evolve.default_config ~wires:n ~depth) with
          Evolve.pop;
          gens;
          seed;
          domains;
        }
      in
      let max_fit = Fitness.max_fitness ~wires:n in
      let print_layers g =
        Array.iteri
          (fun l pairs ->
            Printf.printf "  layer %d: %s\n" (l + 1)
              (String.concat ""
                 (List.map
                    (fun (a, b) -> Printf.sprintf "(%d,%d)" a b)
                    (Array.to_list pairs))))
          g.Genome.levels
      in
      let print_witness best =
        print_layers best;
        (match Evolve.known_optimal_depth n with
        | Some opt when Network.depth (Genome.to_network best) = opt ->
            Printf.printf "depth %d matches the known optimum for n=%d\n" opt n
        | Some opt ->
            Printf.printf "depth %d vs known optimum %d for n=%d\n"
              (Network.depth (Genome.to_network best))
              opt n
        | None -> ());
        Printf.printf "witness verified (0-1 principle): %b\n"
          (Zero_one.is_sorting_network (Genome.to_network best))
      in
      if islands > 0 then begin
        let dir =
          match shard_dir with
          | Some d -> d
          | None -> default_shard_dir "islands"
        in
        match
          Shard_islands.run ~sink ~cancel ~mode:`Processes ~dir ~islands
            ~epoch ~migrants cfg
        with
        | Error e ->
            Printf.eprintf "snlb: evolve: %s\n%!" e;
            1
        | Ok r ->
            if shard_dir = None then cleanup_shard_dir dir;
            Printf.printf
              "evolving n=%d depth=%d: pop=%d gens<=%d seed=%d islands=%d \
               epoch=%d migrants=%d\n"
              n depth pop gens seed islands epoch migrants;
            let outcome =
              match r.Shard_islands.found with
              | Some (g, island) ->
                  Printf.printf
                    "sorter found at generation %d on island %d (fitness \
                     %d/%d, %d comparators)\n"
                    g island r.Shard_islands.best_fitness max_fit
                    (Genome.size r.Shard_islands.best);
                  print_witness r.Shard_islands.best;
                  0
              | None ->
                  Printf.printf
                    "no sorter within %d generations on %d islands; best \
                     fitness %d/%d (%d comparators)\n"
                    r.Shard_islands.generations islands
                    r.Shard_islands.best_fitness max_fit
                    (Genome.size r.Shard_islands.best);
                  exit_budget
            in
            Array.iteri
              (fun i pop ->
                Printf.printf "island %d digest: %s\n" i
                  (Evolve.population_digest pop))
              r.Shard_islands.populations;
            if r.Shard_islands.interrupted then interrupted_exit "evolve"
            else outcome
      end
      else begin
        let checkpoint = Option.map (fun path -> (path, interval)) ckpt in
        let r = Evolve.run ~sink ~cancel ?checkpoint ~resume cfg in
        Printf.printf "evolving n=%d depth=%d: pop=%d gens<=%d seed=%d\n" n
          depth pop gens seed;
        let outcome =
          match r.Evolve.found_at with
          | Some g ->
              Printf.printf
                "sorter found at generation %d (fitness %d/%d, %d comparators)\n"
                g r.Evolve.best_fitness max_fit (Genome.size r.Evolve.best);
              print_witness r.Evolve.best;
              0
          | None ->
              Printf.printf
                "no sorter within %d generations; best fitness %d/%d (%d \
                 comparators)\n"
                r.Evolve.generations r.Evolve.best_fitness max_fit
                (Genome.size r.Evolve.best);
              exit_budget
        in
        Printf.printf "population digest: %s\n"
          (Evolve.population_digest r.Evolve.population);
        if r.Evolve.interrupted then interrupted_exit "evolve" else outcome
      end
    end
  in
  let doc =
    "Evolve sorting networks of a fixed depth shape: tournament selection \
     with elitism, level crossover, and analyzer-guided repair mutation, \
     with fitness (sorted 0-1 inputs) evaluated population-at-a-time on \
     the bit-sliced engine. Deterministic under --seed; with --checkpoint \
     the population is snapshotted at generation boundaries and --resume \
     finishes with the byte-identical final population of an uninterrupted \
     run."
  in
  Cmd.v (Cmd.info "evolve" ~doc)
    Term.(
      const run $ n_arg $ depth_arg $ pop_arg $ gens_arg $ seed_arg
      $ domains_arg $ islands_arg $ epoch_arg $ migrants_arg $ shard_dir_arg
      $ checkpoint_arg $ interval_arg $ resume_arg $ trace_arg $ metrics_arg)

(* fuzz *)

let fuzz_cmd =
  let seconds_arg =
    let doc = "Wall-clock fuzzing budget in seconds." in
    Arg.(value & opt float 10. & info [ "seconds" ] ~docv:"S" ~doc)
  in
  let count_arg =
    let doc = "Stop after checking $(docv) networks (before --seconds)." in
    Arg.(value & opt (some int) None & info [ "count" ] ~docv:"K" ~doc)
  in
  let run seconds count seed trace metrics =
    with_obs ~trace ~metrics @@ fun sink ->
    with_signals @@ fun cancel ->
    let r = Fuzz.run ~sink ~cancel ~seconds ?count ~seed () in
    Printf.eprintf "fuzz: %.1f s, %.0f nets/s\n%!" r.Fuzz.elapsed
      (if r.Fuzz.elapsed > 0. then
         float_of_int r.Fuzz.checked /. r.Fuzz.elapsed
       else 0.);
    Printf.printf "fuzz: checked %d networks, %d disagreements\n"
      r.Fuzz.checked
      (List.length r.Fuzz.disagreements);
    List.iter
      (fun (d : Fuzz.disagreement) ->
        Printf.printf "DISAGREEMENT [%s] at seed=%d index=%d: %s\n"
          d.Fuzz.kind seed d.Fuzz.index d.Fuzz.detail;
        Printf.printf "minimized reproducer (%d comparators):\n%s"
          (Genome.size d.Fuzz.genome)
          (Genome.to_string d.Fuzz.genome))
      r.Fuzz.disagreements;
    if Cancel.cancelled cancel then interrupted_exit "fuzz"
    else if r.Fuzz.disagreements <> [] then exit_failure
    else 0
  in
  let doc =
    "Differentially fuzz the verification stack on seeded random networks: \
     for every sampled genome the compiled bit-sliced engine, the \
     gate-by-gate interpreter, the exact static analyzer (sortedness and \
     dead/redundant proofs), the naive adversary's fooling-pair \
     certificates, and the proved optimal-depth table must all agree. Any \
     disagreement is minimized into a reproducer and exits 1."
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ seconds_arg $ count_arg $ seed_arg $ trace_arg $ metrics_arg)

(* route *)

let route_cmd =
  let run n seed =
    if not (Bitops.is_power_of_two n) then
      usage_error "route: n must be a power of two"
    else begin
      let rng = Xoshiro.of_seed seed in
      let p = Perm.random rng n in
      let nw = Benes.route p in
      Format.printf "permutation: %a@." Perm.pp p;
      Printf.printf "Benes network: %d exchange levels, %d crossed switches
"
        (List.length (Network.levels nw))
        (Benes.switch_count nw);
      let out = Network.eval nw (Array.init n (fun i -> i)) in
      let ok = ref true in
      for i = 0 to n - 1 do
        if out.(Perm.apply p i) <> i then ok := false
      done;
      Printf.printf "routing verified: %b
" !ok;
      if !ok then 0 else 1
    end
  in
  let doc = "Route a random permutation through a Benes network." in
  Cmd.v (Cmd.info "route" ~doc) Term.(const run $ n_arg $ seed_arg)

(* serve / client *)

let socket_arg =
  let doc = "Serve on (or dial) a Unix-domain socket at $(docv)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "Serve on (or dial) TCP port $(docv) on 127.0.0.1." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let serve_addr socket port =
  match (socket, port) with
  | Some path, None -> Ok (Server.Unix_path path)
  | None, Some p -> Ok (Server.Tcp p)
  | None, None -> Error "give --socket PATH or --port PORT"
  | Some _, Some _ -> Error "give --socket or --port, not both"

let serve_cmd =
  let domains_arg =
    let doc = "Parallel domains per verify sweep (0 = auto)." in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"D" ~doc)
  in
  let window_arg =
    let doc =
      "Batch gather window in milliseconds: how long the scheduler \
       lingers after a request arrives so concurrent clients land in \
       the same bit-sliced pass (0 = no gathering)."
    in
    Arg.(value & opt float 2.0 & info [ "window-ms" ] ~docv:"MS" ~doc)
  in
  let cache_arg =
    let doc = "Response-cache capacity in entries (0 disables)." in
    Arg.(value & opt int 512 & info [ "cache-capacity" ] ~docv:"K" ~doc)
  in
  let max_request_arg =
    let doc = "Largest accepted request frame, in bytes." in
    Arg.(value & opt int (1 lsl 20) & info [ "max-request" ] ~docv:"BYTES" ~doc)
  in
  let max_wires_arg =
    let doc =
      "Widest accepted network (verification sweeps 2^wires inputs)."
    in
    Arg.(value & opt int 16 & info [ "max-wires" ] ~docv:"N" ~doc)
  in
  let idle_timeout_arg =
    let doc =
      "Close a session that sits idle between requests for more than \
       $(docv) seconds, after one typed idle-timeout error (0 disables \
       the reaper)."
    in
    Arg.(value & opt float 300. & info [ "idle-timeout" ] ~docv:"SECS" ~doc)
  in
  let deadline_arg =
    let doc =
      "Answer deadline-exceeded and close when one request takes more \
       than $(docv) seconds from its first frame byte to its response \
       (0 disables)."
    in
    Arg.(
      value & opt float 30. & info [ "request-deadline" ] ~docv:"SECS" ~doc)
  in
  let run socket port domains window_ms cache_capacity max_request max_wires
      idle_timeout request_deadline trace metrics =
    match serve_addr socket port with
    | Error e -> usage_error ("serve: " ^ e)
    | Ok addr ->
        if window_ms < 0. || cache_capacity < 0 || max_request < 1
           || max_wires < 2 || idle_timeout < 0. || request_deadline < 0.
        then
          usage_error "serve: nonsensical limits"
        else begin
          let domains =
            if domains <= 0 then Par.recommended_domains () else domains
          in
          record_domains domains;
          let config =
            { (Server.default_config addr) with
              Server.domains;
              window = window_ms /. 1000.;
              cache_capacity;
              max_request;
              max_wires;
              idle_timeout;
              request_deadline;
            }
          in
          with_obs ~trace ~metrics @@ fun sink ->
          with_signals @@ fun cancel ->
          let ready () =
            Printf.printf "serve: listening on %s\n%!" (Server.addr_text addr)
          in
          match Server.run ~sink ~ready ~cancel config with
          | Error e ->
              prerr_endline ("serve: " ^ e);
              exit_failure
          | Ok () ->
              if Cancel.cancelled cancel then begin
                if metrics then print_metrics ();
                interrupted_exit "serve"
              end
              else 0
        end
  in
  let doc =
    "Run the network-verification daemon: length-prefixed JSON requests \
     (verify / certify / lint / eval) over a Unix or loopback TCP \
     socket, with concurrent clients' requests coalesced into shared \
     63-lane bit-sliced engine passes and verdicts cached under \
     wire-permutation canonical keys. SIGINT/SIGTERM drain in-flight \
     requests and exit 130. The wire protocol is documented in \
     README.md."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ port_arg $ domains_arg $ window_arg $ cache_arg
      $ max_request_arg $ max_wires_arg $ idle_timeout_arg $ deadline_arg
      $ trace_arg $ metrics_arg)

let client_cmd =
  let verb_arg =
    let doc = "Request verb: verify, certify, lint, or eval." in
    Arg.(
      required
      & pos 0 (some (enum
           [ ("verify", "verify"); ("certify", "certify"); ("lint", "lint");
             ("eval", "eval") ])) None
      & info [] ~docv:"VERB" ~doc)
  in
  let file_arg =
    let doc = "Send the network from $(docv) (snlb text format) \
               instead of a registry sorter." in
    Arg.(value & opt (some string) None & info [ "file" ] ~docv:"NET" ~doc)
  in
  let input_arg =
    let doc = "Input values for eval, comma-separated." in
    Arg.(value & opt (some string) None & info [ "input" ] ~docv:"V,V,..." ~doc)
  in
  let repeat_arg =
    let doc = "Send the request $(docv) times (distinct ids, one \
               connection)." in
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"K" ~doc)
  in
  let wait_arg =
    let doc = "Retry the dial for up to $(docv) seconds while the \
               daemon starts." in
    Arg.(value & opt float 5.0 & info [ "wait" ] ~docv:"SECS" ~doc)
  in
  let dial addr wait =
    let deadline = Unix.gettimeofday () +. wait in
    let rec go () =
      match Server.connect addr with
      | fd -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          if Unix.gettimeofday () >= deadline then
            Error (Unix.error_message e)
          else begin
            Unix.sleepf 0.05;
            go ()
          end
    in
    go ()
  in
  let run socket port verb algo n file input repeat wait =
    match serve_addr socket port with
    | Error e -> usage_error ("client: " ^ e)
    | Ok addr -> (
        let net_fields =
          match file with
          | Some path -> (
              match In_channel.with_open_bin path In_channel.input_all with
              | text -> Ok [ ("network", Json.Str text) ]
              | exception Sys_error e -> Error e)
          | None -> Ok [ ("algo", Json.Str algo); ("n", Json.Int n) ]
        in
        let input_fields =
          match input with
          | None -> Ok []
          | Some s -> (
              match
                List.map
                  (fun v -> Json.Int (int_of_string (String.trim v)))
                  (String.split_on_char ',' s)
              with
              | vs -> Ok [ ("input", Json.List vs) ]
              | exception Failure _ -> Error "client: bad --input")
        in
        match (net_fields, input_fields) with
        | Error e, _ | _, Error e -> usage_error ("client: " ^ e)
        | Ok net_fields, Ok input_fields -> (
            match dial addr wait with
            | Error e ->
                prerr_endline ("client: cannot connect: " ^ e);
                exit_failure
            | Ok fd ->
                let reader = Frame.reader fd in
                let failures = ref 0 in
                for k = 1 to repeat do
                  let req =
                    Json.Obj
                      (("id", Json.Int k) :: ("verb", Json.Str verb)
                      :: (net_fields @ input_fields))
                  in
                  Frame.write fd (Json.to_string req);
                  match Frame.read ~max:(1 lsl 24) reader with
                  | Ok payload ->
                      print_endline payload;
                      (match
                         Option.bind
                           (Option.bind (Json.of_string payload |> Result.to_option)
                              (Json.member "ok"))
                           Json.to_bool
                       with
                      | Some true -> ()
                      | _ -> incr failures)
                  | Error err ->
                      Printf.eprintf "client: %s\n" (Frame.error_text err);
                      incr failures
                done;
                Unix.close fd;
                if !failures > 0 then exit_failure else 0))
  in
  let doc =
    "Send requests to a running $(b,snlb serve) daemon and print the \
     JSON responses, one per line. Exits 1 if any response is an \
     error."
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run $ socket_arg $ port_arg $ verb_arg $ algo_arg $ n_arg
      $ file_arg $ input_arg $ repeat_arg $ wait_arg)

(* list *)

let list_cmd =
  let run () =
    Printf.printf "sorting networks:\n";
    List.iter
      (fun e ->
        Printf.printf "  %-16s %s\n" e.Sorter_registry.name
          (if e.Sorter_registry.pow2_only then "(n = power of two)" else ""))
      Sorter_registry.all;
    Printf.printf "experiments:\n";
    List.iter
      (fun e -> Printf.printf "  %-4s %s\n" e.Registry.id e.Registry.title)
      Registry.all;
    0
  in
  let doc = "List available networks and experiments." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let main =
  let doc =
    "Sorting networks based on the shuffle permutation: constructions, \
     verification, and the Plaxton-Suel lower-bound adversary."
  in
  Cmd.group (Cmd.info "snlb" ~version:"1.0.0" ~doc)
    [ list_cmd; sort_cmd; verify_cmd; certify_cmd; check_cmd; table_cmd;
      dot_cmd; draw_cmd; save_cmd; load_cmd; lint_cmd; search_cmd; route_cmd;
      serve_cmd; client_cmd; evolve_cmd; fuzz_cmd ]

let () = exit (Cmd.eval' ~term_err:exit_usage main)
